(* Tests for lib/lsr — the distributed link-state control plane: wire
   codec roundtrips, convergence from a cold start, equivalence of the
   converged tables with the routing oracle, and reconvergence around
   link flaps and router crashes. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Lan = Net.Lan
module Topology = Net.Topology
module TG = Workload.Topo_gen
module LP = Lsr.Packet

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Wire codec --- *)

let gen_addr = QCheck.Gen.(map Addr.of_int (int_bound 0xFFFF_FFFF))

let gen_link =
  QCheck.Gen.(
    map3
      (fun (base, len) addr neighbors ->
         { LP.prefix = Addr.Prefix.make base len; addr; neighbors })
      (pair gen_addr (int_bound 32))
      gen_addr
      (list_size (int_bound 5) gen_addr))

let gen_packet =
  QCheck.Gen.(
    oneof
      [ map (fun origin -> LP.Hello { origin }) gen_addr;
        map3
          (fun origin seq links -> LP.Lsa { origin; seq; links })
          gen_addr (int_bound 0x3FFF_FFFF)
          (list_size (int_bound 6) gen_link) ])

let arb_packet = QCheck.make ~print:(Format.asprintf "%a" LP.pp) gen_packet

let codec_tests =
  [ qtest
      (QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500 arb_packet
         (fun p ->
            let b = LP.encode p in
            Bytes.length b = LP.size p && LP.decode b = p));
    Alcotest.test_case "malformed inputs rejected" `Quick (fun () ->
        let reject name b =
          check Alcotest.bool name true (LP.decode_opt b = None)
        in
        reject "empty" Bytes.empty;
        reject "short" (Bytes.make 3 '\x00');
        let hello = LP.encode (LP.Hello { origin = Addr.of_int 42 }) in
        reject "hello + trailing" (Bytes.cat hello (Bytes.make 1 '\x00'));
        let bad_ver = Bytes.copy hello in
        Bytes.set_uint8 bad_ver 0 9;
        reject "bad version" bad_ver;
        let bad_tag = Bytes.copy hello in
        Bytes.set_uint8 bad_tag 1 7;
        reject "unknown type" bad_tag;
        let lsa =
          LP.encode
            (LP.Lsa
               { origin = Addr.of_int 1; seq = 3;
                 links =
                   [ { LP.prefix = Addr.Prefix.make (Addr.of_int 0x0A000100) 24;
                       addr = Addr.of_int 0x0A000101;
                       neighbors = [Addr.of_int 0x0A000102] } ] })
        in
        reject "truncated lsa" (Bytes.sub lsa 0 (Bytes.length lsa - 2));
        reject "lsa + trailing" (Bytes.cat lsa (Bytes.make 2 '\x00')));
    Alcotest.test_case "sizes are byte-exact" `Quick (fun () ->
        check Alcotest.int "hello" 6
          (LP.size (LP.Hello { origin = Addr.of_int 0 }));
        let links =
          [ { LP.prefix = Addr.Prefix.make (Addr.of_int 0x0A000100) 24;
              addr = Addr.of_int 0x0A000101;
              neighbors = [Addr.of_int 1; Addr.of_int 2] } ]
        in
        (* 6 header + 4 seq + 2 count + (4+1+4+2) link + 2*4 neighbors *)
        check Alcotest.int "lsa" 31
          (LP.size (LP.Lsa { origin = Addr.of_int 0; seq = 1; links }))) ]

(* --- Convergence and oracle equivalence --- *)

(* Fast timers so convergence tests stay quick: 100 ms hellos, 2 s
   refresh. *)
let test_config =
  Lsr.Config.make ~hello_interval:(Time.of_ms 100)
    ~refresh_interval:(Time.of_sec 2.0) ()

let converge ?(config = test_config) ?(for_ = Time.of_sec 2.0) topo =
  let d = Lsr.Domain.create ~config topo in
  Lsr.Domain.start d;
  Topology.run ~until:(Time.add (Topology.now topo) for_) topo;
  d

let check_converged name d =
  check Alcotest.bool (name ^ ": synchronized") true
    (Lsr.Domain.synchronized d);
  match Lsr.Domain.check_equivalence d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: not oracle-equivalent: %s" name e

let convergence_tests =
  [ Alcotest.test_case "figure 1 converges from a cold start" `Quick
      (fun () ->
        let f = TG.figure1_plain () in
        let d = converge f.TG.p_topo in
        check_converged "figure1" d;
        let c = Lsr.Domain.totals d in
        check Alcotest.bool "hellos flowed" true
          (c.Lsr.Counters.hellos_sent > 0
           && c.Lsr.Counters.hellos_received > 0);
        check Alcotest.bool "every router originated" true
          (c.Lsr.Counters.lsas_originated >= 4);
        check Alcotest.bool "redundant floods were suppressed" true
          (c.Lsr.Counters.floods_suppressed > 0);
        check Alcotest.bool "spf ran everywhere" true
          (List.for_all
             (fun r -> (Lsr.Router.counters r).Lsr.Counters.spf_runs > 0)
             (Lsr.Domain.routers d));
        check Alcotest.int "databases hold all four routers" 4
          (Lsr.Router.lsdb_size (Lsr.Domain.router d "R1")));
    Alcotest.test_case "campus internetwork converges" `Quick (fun () ->
        let c =
          TG.campuses_plain ~campuses:4 ~mobiles_per_campus:1
            ~correspondents:2 ()
        in
        let d = converge c.TG.cp_topo in
        check_converged "campuses-4" d;
        check Alcotest.int "all routers known everywhere" 4
          (Lsr.Router.lsdb_size (List.hd (Lsr.Domain.routers d))));
    Alcotest.test_case "cold start leaves host tables alone" `Quick
      (fun () ->
        let f = TG.figure1_plain () in
        let host_routes = Net.Route.entries (Node.routes f.TG.p_s) in
        let d = Lsr.Domain.create ~config:test_config f.TG.p_topo in
        check Alcotest.bool "router table emptied" true
          (Net.Route.entries (Node.routes f.TG.p_r1) = []);
        check Alcotest.bool "host table untouched" true
          (Net.Route.entries (Node.routes f.TG.p_s) = host_routes);
        ignore d);
    Alcotest.test_case "tick staggers are distinct" `Quick (fun () ->
        let f = TG.figure1_plain () in
        let d = Lsr.Domain.create ~config:test_config f.TG.p_topo in
        Lsr.Domain.start d;
        (* Run one hello interval and confirm beacons did not all land on
           the same instant: each router's first hello goes out on its own
           tick, so the four first-hello times are the four staggers and
           must differ.  (LSA re-floods are arrival-driven and can
           coincide; ignore them.) *)
        let times = Hashtbl.create 4 in
        List.iter
          (fun r ->
             let node = Lsr.Router.node r in
             Node.on_broadcast node (fun n pkt ->
                 match LP.decode_opt pkt.Ipv4.Packet.payload with
                 | Some (LP.Hello _) when not (Hashtbl.mem times (Node.name n))
                   ->
                   Hashtbl.replace times (Node.name n)
                     (Netsim.Engine.now (Node.engine n))
                 | _ -> ()))
          (Lsr.Domain.routers d);
        Topology.run ~until:(Time.of_ms 100) f.TG.p_topo;
        let ts = Hashtbl.fold (fun _ t acc -> t :: acc) times [] in
        check Alcotest.int "all four beaconed" 4 (List.length ts);
        check Alcotest.int "at distinct times" 4
          (List.length (List.sort_uniq compare ts))) ]

(* --- Reconvergence around faults --- *)

let fault_tests =
  [ Alcotest.test_case "link flap: routes around, then heals" `Quick
      (fun () ->
        let f = TG.figure1_plain () in
        let topo = f.TG.p_topo in
        let d = converge topo in
        check_converged "before flap" d;
        (* Net C is the only path to R4 and net D: cutting it must make
           them unreachable (not looped-to), and healing must restore the
           exact oracle paths. *)
        Lan.set_up f.TG.p_net_c false;
        Topology.run ~until:(Time.add (Topology.now topo) (Time.of_sec 2.0))
          topo;
        (match Lsr.Domain.check_equivalence d with
         | Ok () -> ()
         | Error e -> Alcotest.failf "during flap: %s" e);
        let r1 = Lsr.Domain.router d "R1" in
        check Alcotest.bool "net D withdrawn at R1" true
          (Net.Route.lookup
             (Node.routes (Lsr.Router.node r1))
             (Addr.Prefix.host (Lan.prefix f.TG.p_net_d) 1)
           = None);
        Lan.set_up f.TG.p_net_c true;
        Topology.run ~until:(Time.add (Topology.now topo) (Time.of_sec 2.0))
          topo;
        check_converged "after heal" d;
        check Alcotest.bool "net D restored at R1" true
          (Net.Route.lookup
             (Node.routes (Lsr.Router.node r1))
             (Addr.Prefix.host (Lan.prefix f.TG.p_net_d) 1)
           <> None));
    Alcotest.test_case "router crash: dead-neighbor detection and reboot"
      `Quick (fun () ->
        let f = TG.figure1_plain () in
        let topo = f.TG.p_topo in
        let d = converge topo in
        let r1 = Lsr.Domain.router d "R1" in
        let r3_id = Lsr.Router.router_id (Lsr.Domain.router d "R3") in
        let seq_before =
          match Lsr.Router.lsdb_seq r1 r3_id with
          | Some s -> s
          | None -> Alcotest.fail "R1 has no LSA for R3"
        in
        Node.crash_for f.TG.p_r3 (Time.of_sec 1.0);
        Topology.run ~until:(Time.add (Topology.now topo) (Time.of_sec 4.0))
          topo;
        check_converged "after reboot" d;
        let c = Lsr.Domain.totals d in
        check Alcotest.bool "neighbors were declared dead" true
          (c.Lsr.Counters.neighbors_down > 0);
        (* The rebooted router's sequence numbers kept rising: its NVRAM
           sequence outbids every stale pre-crash LSA. *)
        check Alcotest.bool "R3 reoriginated above its pre-crash seq" true
          (match Lsr.Router.lsdb_seq r1 r3_id with
           | Some s -> s > seq_before
           | None -> false));
    Alcotest.test_case "converged tables are stable (no refresh churn)"
      `Quick (fun () ->
        let f = TG.figure1_plain () in
        let topo = f.TG.p_topo in
        let d = converge topo in
        let spf_runs () =
          (Lsr.Domain.totals d).Lsr.Counters.spf_runs
        in
        let before = spf_runs () in
        (* Two refresh intervals of quiet: refresh floods happen, but they
           carry no news, so SPF stays asleep. *)
        Topology.run ~until:(Time.add (Topology.now topo) (Time.of_sec 4.0))
          topo;
        check Alcotest.int "no further SPF runs" before (spf_runs ());
        check_converged "still converged" d) ]

(* --- Oracle counter (satellite) --- *)

let oracle_counter_tests =
  [ Alcotest.test_case "recompute_count ticks per oracle sweep" `Quick
      (fun () ->
        let f = TG.figure1_plain () in
        let before = Net.Routing.recompute_count () in
        Topology.compute_routes f.TG.p_topo;
        Topology.compute_routes f.TG.p_topo;
        check Alcotest.int "two sweeps counted" (before + 2)
          (Net.Routing.recompute_count ())) ]

let suite =
  [ ("lsr-codec", codec_tests);
    ("lsr-convergence", convergence_tests);
    ("lsr-faults", fault_tests);
    ("lsr-oracle-counter", oracle_counter_tests) ]
