(* Tests for the five Section 7 comparison protocols: correct delivery on
   the shared substrate, exact per-packet overheads, and their
   characteristic staleness behaviours. *)

module Time = Netsim.Time
module Node = Net.Node
module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module TG = Workload.Topo_gen

let check = Alcotest.check

let mk_pkt ?(id = 1) ?(size = 64) ~src ~dst () =
  let udp = Ipv4.Udp.make ~src_port:4000 ~dst_port:4000 (Bytes.create size) in
  Packet.make ~id ~proto:Ipv4.Proto.udp ~src:(Node.primary_addr src) ~dst
    (Ipv4.Udp.encode udp)

let schedule p at f =
  ignore
    (Netsim.Engine.schedule (Net.Topology.engine p.TG.p_topo)
       ~at:(Time.of_sec at) f)

let run ?(until = 20.0) p =
  Net.Topology.run ~until:(Time.of_sec until) p.TG.p_topo

(* --- encapsulation codecs --- *)

let sample () =
  Packet.make ~id:9 ~proto:Ipv4.Proto.udp ~src:(Addr.host 1 10)
    ~dst:(Addr.host 2 10)
    (Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.create 64)))

let codec_tests =
  [ Alcotest.test_case "ipip adds exactly 24 bytes and roundtrips" `Quick
      (fun () ->
         let pkt = sample () in
         let e =
           Baselines.Ipip.encap ~outer_src:(Addr.host 3 1)
             ~outer_dst:(Addr.host 4 1) pkt
         in
         check Alcotest.int "overhead" Baselines.Ipip.overhead
           (Packet.total_length e - Packet.total_length pkt);
         check Alcotest.int "24" 24 Baselines.Ipip.overhead;
         match Baselines.Ipip.decap e with
         | Some inner ->
           check Alcotest.bool "identical" true
             (Packet.encode inner = Packet.encode pkt)
         | None -> Alcotest.fail "decap failed");
    Alcotest.test_case "vip header adds exactly 28 bytes and roundtrips"
      `Quick (fun () ->
          let pkt = sample () in
          let h =
            { Baselines.Viph.vip_src = Addr.host 1 10;
              vip_dst = Addr.host 2 10; hop_count = 3; timestamp = 77 }
          in
          let e = Baselines.Viph.add h pkt in
          check Alcotest.int "overhead" 28
            (Packet.total_length e - Packet.total_length pkt);
          match Baselines.Viph.strip e with
          | Some (h', inner) ->
            check Alcotest.bool "vip fields" true
              (Addr.equal h'.Baselines.Viph.vip_src (Addr.host 1 10)
               && h'.Baselines.Viph.timestamp = 77);
            check Alcotest.int "proto restored" Ipv4.Proto.udp
              inner.Packet.proto;
            check Alcotest.string "payload"
              (Bytes.to_string pkt.Packet.payload)
              (Bytes.to_string inner.Packet.payload)
          | None -> Alcotest.fail "strip failed");
    Alcotest.test_case "iptp adds exactly 40 bytes and roundtrips" `Quick
      (fun () ->
         let pkt = sample () in
         let e =
           Baselines.Iptp.encap ~outer_src:(Addr.host 3 1)
             ~outer_dst:(Addr.host 4 1) pkt
         in
         check Alcotest.int "overhead" 40
           (Packet.total_length e - Packet.total_length pkt);
         match Baselines.Iptp.decap e with
         | Some inner ->
           check Alcotest.bool "identical" true
             (Packet.encode inner = Packet.encode pkt)
         | None -> Alcotest.fail "decap failed");
    Alcotest.test_case "lsrr option overhead is 8 bytes" `Quick (fun () ->
        let pkt = sample () in
        let routed =
          { pkt with
            Packet.options = [Ipv4.Ip_option.lsrr [Addr.host 9 1]] }
        in
        check Alcotest.int "overhead" 8
          (Packet.total_length routed - Packet.total_length pkt);
        check Alcotest.int "declared" 8 Baselines.Ibm_lsrr.lsrr_overhead) ]

(* --- Sunshine-Postel --- *)

let sp_tests =
  [ Alcotest.test_case "query, source-route, deliver" `Quick (fun () ->
        let p = TG.figure1_plain () in
        let m_addr = Node.primary_addr p.TG.p_m in
        let db = Net.Topology.add_host p.TG.p_topo "DB" p.TG.p_backbone 20 in
        Net.Topology.compute_routes p.TG.p_topo;
        let sp = Baselines.Sunshine_postel.create p.TG.p_topo ~db_node:db in
        let fwd4 =
          Baselines.Sunshine_postel.add_forwarder sp p.TG.p_r4
            ~lan:p.TG.p_net_d
        in
        Baselines.Sunshine_postel.make_mobile sp p.TG.p_m;
        let received = ref 0 in
        Node.set_proto_handler p.TG.p_m Ipv4.Proto.udp (fun _ _ ->
            incr received);
        schedule p 1.0 (fun () ->
            Baselines.Sunshine_postel.move sp p.TG.p_m ~forwarder:fwd4
              p.TG.p_net_d);
        schedule p 2.0 (fun () ->
            Baselines.Sunshine_postel.send sp ~src:p.TG.p_s
              (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
        schedule p 3.0 (fun () ->
            Baselines.Sunshine_postel.send sp ~src:p.TG.p_s
              (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr ()));
        run p;
        check Alcotest.int "both delivered" 2 !received;
        (* one DB lookup: the second packet used the cached forwarder *)
        check Alcotest.int "one lookup" 1
          (Baselines.Sunshine_postel.db_lookups sp);
        check Alcotest.int "db holds one mobile" 8
          (Baselines.Sunshine_postel.db_state_bytes sp));
    Alcotest.test_case
      "staleness: old forwarder unreachable triggers re-query" `Quick
      (fun () ->
         let p = TG.figure1_plain () in
         let m_addr = Node.primary_addr p.TG.p_m in
         let db = Net.Topology.add_host p.TG.p_topo "DB" p.TG.p_backbone 20 in
         (* a second visitable network behind R3 *)
         let net_e = Net.Topology.add_lan p.TG.p_topo ~net:5 "netE" in
         let r5 =
           Net.Topology.add_router p.TG.p_topo "R5"
             [(p.TG.p_net_c, 3); (net_e, 1)]
         in
         Net.Topology.compute_routes p.TG.p_topo;
         let sp = Baselines.Sunshine_postel.create p.TG.p_topo ~db_node:db in
         let fwd4 =
           Baselines.Sunshine_postel.add_forwarder sp p.TG.p_r4
             ~lan:p.TG.p_net_d
         in
         let fwd5 =
           Baselines.Sunshine_postel.add_forwarder sp r5 ~lan:net_e
         in
         Baselines.Sunshine_postel.make_mobile sp p.TG.p_m;
         let received = ref 0 in
         Node.set_proto_handler p.TG.p_m Ipv4.Proto.udp (fun _ _ ->
             incr received);
         schedule p 1.0 (fun () ->
             Baselines.Sunshine_postel.move sp p.TG.p_m ~forwarder:fwd4
               p.TG.p_net_d);
         schedule p 2.0 (fun () ->
             Baselines.Sunshine_postel.send sp ~src:p.TG.p_s
               (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
         (* move: S's cached forwarder is now stale *)
         schedule p 3.0 (fun () ->
             Baselines.Sunshine_postel.move sp p.TG.p_m ~forwarder:fwd5
               net_e);
         schedule p 4.0 (fun () ->
             Baselines.Sunshine_postel.send sp ~src:p.TG.p_s
               (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr ()));
         run p;
         (* the stale packet dies at the old forwarder, the unreachable
            error triggers a re-query and retransmission: delivered *)
         check Alcotest.int "both delivered eventually" 2 !received;
         check Alcotest.int "two lookups (cold + staleness)" 2
           (Baselines.Sunshine_postel.db_lookups sp)) ]

(* --- Columbia --- *)

let columbia_setup () =
  let p = TG.figure1_plain () in
  let m_addr = Node.primary_addr p.TG.p_m in
  let co = Baselines.Columbia.create p.TG.p_topo in
  let msr_home = Baselines.Columbia.add_msr co p.TG.p_r2 ~cell:p.TG.p_net_b in
  let msr4 = Baselines.Columbia.add_msr co p.TG.p_r4 ~cell:p.TG.p_net_d in
  Baselines.Columbia.make_mobile co p.TG.p_m ~home:msr_home;
  let received = ref 0 in
  Node.set_proto_handler p.TG.p_m Ipv4.Proto.udp (fun _ _ -> incr received);
  (p, m_addr, co, msr_home, msr4, received)

let columbia_tests =
  [ Alcotest.test_case "who-has query resolves and delivers" `Quick
      (fun () ->
         let p, m_addr, co, msr_home, msr4, received = columbia_setup () in
         ignore msr_home;
         schedule p 1.0 (fun () ->
             Baselines.Columbia.move co p.TG.p_m ~to_msr:msr4);
         schedule p 2.0 (fun () ->
             Baselines.Columbia.send co ~src:p.TG.p_s
               (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
         schedule p 3.0 (fun () ->
             Baselines.Columbia.send co ~src:p.TG.p_s
               (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr ()));
         run p;
         check Alcotest.int "delivered" 2 !received;
         (* control cost includes the who-has (one per peer MSR) *)
         check Alcotest.bool "queries issued" true
           (Baselines.Columbia.control_messages co >= 3));
    Alcotest.test_case "every outside packet triangles via the home MSR"
      `Quick (fun () ->
          let p, m_addr, co, msr_home, msr4, received = columbia_setup () in
          ignore msr_home;
          let home_msr_fwd_before = Node.packets_forwarded p.TG.p_r2 in
          schedule p 1.0 (fun () ->
              Baselines.Columbia.move co p.TG.p_m ~to_msr:msr4);
          for k = 1 to 3 do
            schedule p (1.0 +. float_of_int k) (fun () ->
                Baselines.Columbia.send co ~src:p.TG.p_s
                  (mk_pkt ~id:k ~src:p.TG.p_s ~dst:m_addr ()))
          done;
          run p;
          check Alcotest.int "delivered" 3 !received;
          (* R2 (home MSR) handled every one of them: no route
             optimisation outside the campus *)
          check Alcotest.bool "all via home MSR" true
            (Node.packets_delivered p.TG.p_r2
             + Node.packets_forwarded p.TG.p_r2 - home_msr_fwd_before
             >= 3)) ]

(* --- Sony VIP --- *)

let sony_tests =
  [ Alcotest.test_case "resolution via home router, then snooped caches"
      `Quick (fun () ->
          let p = TG.figure1_plain () in
          let m_addr = Node.primary_addr p.TG.p_m in
          let sv = Baselines.Sony_vip.create p.TG.p_topo in
          List.iter (Baselines.Sony_vip.add_router sv)
            [p.TG.p_r1; p.TG.p_r2; p.TG.p_r3; p.TG.p_r4];
          Baselines.Sony_vip.make_host sv p.TG.p_m ~home_router:p.TG.p_r2;
          Baselines.Sony_vip.make_host sv p.TG.p_s ~home_router:p.TG.p_r1;
          let received = ref 0 in
          Baselines.Sony_vip.on_receive sv p.TG.p_m (fun _ -> incr received);
          let temp = Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
          schedule p 1.0 (fun () ->
              Baselines.Sony_vip.move sv p.TG.p_m ~lan:p.TG.p_net_d
                ~via_router:p.TG.p_r4 ~temp);
          schedule p 2.0 (fun () ->
              Baselines.Sony_vip.send sv ~src:p.TG.p_s
                (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
          schedule p 3.0 (fun () ->
              Baselines.Sony_vip.send sv ~src:p.TG.p_s
                (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr ()));
          (* the mobile host replies: routers in its path snoop the
             vip -> temporary-address mapping *)
          let s_addr = Node.primary_addr p.TG.p_s in
          schedule p 4.0 (fun () ->
              Baselines.Sony_vip.send sv ~src:p.TG.p_m
                (mk_pkt ~id:3 ~src:p.TG.p_m ~dst:s_addr ()));
          run p;
          check Alcotest.int "delivered" 2 !received;
          check Alcotest.bool "routers snooped mappings" true
            (Baselines.Sony_vip.router_cache_bytes sv > 0));
    Alcotest.test_case "imperfect flood leaves stale entries" `Quick
      (fun () ->
         let p = TG.figure1_plain () in
         let sv =
           Baselines.Sony_vip.create ~flood_reliability:0.0 p.TG.p_topo
         in
         List.iter (Baselines.Sony_vip.add_router sv)
           [p.TG.p_r1; p.TG.p_r2; p.TG.p_r3; p.TG.p_r4];
         Baselines.Sony_vip.make_host sv p.TG.p_m ~home_router:p.TG.p_r2;
         Baselines.Sony_vip.make_host sv p.TG.p_s ~home_router:p.TG.p_r1;
         let m_addr = Node.primary_addr p.TG.p_m in
         let received = ref 0 in
         Baselines.Sony_vip.on_receive sv p.TG.p_m (fun _ -> incr received);
         let temp = Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
         schedule p 1.0 (fun () ->
             Baselines.Sony_vip.move sv p.TG.p_m ~lan:p.TG.p_net_d
               ~via_router:p.TG.p_r4 ~temp);
         schedule p 2.0 (fun () ->
             Baselines.Sony_vip.send sv ~src:p.TG.p_s
               (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
         (* the mobile replies so routers snoop its temp mapping *)
         let s_addr = Node.primary_addr p.TG.p_s in
         schedule p 2.5 (fun () ->
             Baselines.Sony_vip.send sv ~src:p.TG.p_m
               (mk_pkt ~id:5 ~src:p.TG.p_m ~dst:s_addr ()));
         (* second move with a useless flood: snooped entries go stale *)
         let temp2 = Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_b) 60 in
         schedule p 3.0 (fun () ->
             Baselines.Sony_vip.move sv p.TG.p_m ~lan:p.TG.p_net_b
               ~via_router:p.TG.p_r2 ~temp:temp2);
         run p;
         check Alcotest.bool "stale entries remain" true
           (Baselines.Sony_vip.stale_entries sv > 0));
    Alcotest.test_case "moves cost one flood message per router" `Quick
      (fun () ->
         let p = TG.figure1_plain () in
         let sv = Baselines.Sony_vip.create p.TG.p_topo in
         List.iter (Baselines.Sony_vip.add_router sv)
           [p.TG.p_r1; p.TG.p_r2; p.TG.p_r3; p.TG.p_r4];
         Baselines.Sony_vip.make_host sv p.TG.p_m ~home_router:p.TG.p_r2;
         let temp = Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
         Baselines.Sony_vip.move sv p.TG.p_m ~lan:p.TG.p_net_d
           ~via_router:p.TG.p_r4 ~temp;
         (* 1 registration + 4 flood messages *)
         check Alcotest.int "ctrl" 5 (Baselines.Sony_vip.control_messages sv)) ]

(* --- Matsushita --- *)

let matsushita_tests =
  [ Alcotest.test_case "forwarding mode always goes through the PFS"
      `Quick (fun () ->
          let p = TG.figure1_plain () in
          let m_addr = Node.primary_addr p.TG.p_m in
          let ma =
            Baselines.Matsushita.create p.TG.p_topo
              Baselines.Matsushita.Forwarding
          in
          Baselines.Matsushita.add_pfs ma p.TG.p_r2;
          Baselines.Matsushita.make_mobile ma p.TG.p_m ~pfs:p.TG.p_r2;
          let received = ref 0 in
          Baselines.Matsushita.on_receive ma p.TG.p_m (fun _ ->
              incr received);
          let temp = Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
          schedule p 1.0 (fun () ->
              Baselines.Matsushita.move ma p.TG.p_m ~lan:p.TG.p_net_d
                ~via_router:p.TG.p_r4 ~temp);
          schedule p 2.0 (fun () ->
              Baselines.Matsushita.send ma ~src:p.TG.p_s
                (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
          schedule p 3.0 (fun () ->
              Baselines.Matsushita.send ma ~src:p.TG.p_s
                (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr ()));
          run p;
          check Alcotest.int "delivered" 2 !received);
    Alcotest.test_case
      "autonomous mode learns the binding and tunnels direct" `Quick
      (fun () ->
         let p = TG.figure1_plain () in
         let m_addr = Node.primary_addr p.TG.p_m in
         let ma =
           Baselines.Matsushita.create p.TG.p_topo
             Baselines.Matsushita.Autonomous
         in
         Baselines.Matsushita.add_pfs ma p.TG.p_r2;
         Baselines.Matsushita.make_mobile ma p.TG.p_m ~pfs:p.TG.p_r2;
         let received = ref 0 in
         Baselines.Matsushita.on_receive ma p.TG.p_m (fun _ ->
             incr received);
         let temp = Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
         schedule p 1.0 (fun () ->
             Baselines.Matsushita.move ma p.TG.p_m ~lan:p.TG.p_net_d
               ~via_router:p.TG.p_r4 ~temp);
         schedule p 2.0 (fun () ->
             Baselines.Matsushita.send ma ~src:p.TG.p_s
               (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
         schedule p 3.0 (fun () ->
             Baselines.Matsushita.send ma ~src:p.TG.p_s
               (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr ()));
         run p;
         check Alcotest.int "delivered" 2 !received;
         (* the second packet avoided the PFS: R2 only saw one *)
         check Alcotest.bool "binding notice was sent" true
           (Baselines.Matsushita.control_messages ma >= 2)) ]

(* --- IBM LSRR --- *)

let ibm_tests =
  [ Alcotest.test_case "reversed recorded routes carry replies" `Quick
      (fun () ->
         let p = TG.figure1_plain () in
         let m_addr = Node.primary_addr p.TG.p_m in
         let s_addr = Node.primary_addr p.TG.p_s in
         let ib = Baselines.Ibm_lsrr.create p.TG.p_topo in
         let home_base =
           Baselines.Ibm_lsrr.add_base ib p.TG.p_r2 ~lan:p.TG.p_net_b
         in
         let base4 =
           Baselines.Ibm_lsrr.add_base ib p.TG.p_r4 ~lan:p.TG.p_net_d
         in
         Baselines.Ibm_lsrr.make_mobile ib p.TG.p_m ~home_base;
         let m_received = ref 0 and s_received = ref 0 in
         Baselines.Ibm_lsrr.on_receive ib p.TG.p_m (fun _ ->
             incr m_received);
         Baselines.Ibm_lsrr.on_receive ib p.TG.p_s (fun _ ->
             incr s_received);
         schedule p 1.0 (fun () ->
             Baselines.Ibm_lsrr.move ib p.TG.p_m ~base:base4);
         (* initial contact goes via the home base *)
         schedule p 2.0 (fun () ->
             Baselines.Ibm_lsrr.send ib ~src:p.TG.p_s
               (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr ()));
         (* the mobile's reply teaches S the reversed route *)
         schedule p 3.0 (fun () ->
             Baselines.Ibm_lsrr.send ib ~src:p.TG.p_m
               (mk_pkt ~id:2 ~src:p.TG.p_m ~dst:s_addr ()));
         schedule p 4.0 (fun () ->
             Baselines.Ibm_lsrr.send ib ~src:p.TG.p_s
               (mk_pkt ~id:3 ~src:p.TG.p_s ~dst:m_addr ()));
         run p;
         check Alcotest.int "mobile got both" 2 !m_received;
         check Alcotest.int "sender got reply" 1 !s_received);
    Alcotest.test_case
      "optioned packets pay the router slow path (Section 7)" `Quick
      (fun () ->
         (* identical payload with and without LSRR through two routers;
            the optioned one must be slower by the slow-path factor *)
         let p = TG.figure1_plain () in
         Net.Topology.compute_routes p.TG.p_topo;
         let b_addr = Node.primary_addr p.TG.p_m in
         let arrival = ref Time.zero and arrival_plain = ref Time.zero in
         Node.set_proto_handler p.TG.p_m Ipv4.Proto.udp (fun node pkt ->
             ignore node;
             if pkt.Packet.options = [] then
               arrival_plain := Netsim.Engine.now (Node.engine p.TG.p_m)
             else arrival := Netsim.Engine.now (Node.engine p.TG.p_m));
         (* warm ARP with a plain packet, then measure *)
         schedule p 1.0 (fun () ->
             Node.send p.TG.p_s (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:b_addr ()));
         schedule p 2.0 (fun () ->
             Node.send p.TG.p_s (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:b_addr ()));
         schedule p 3.0 (fun () ->
             let pkt = mk_pkt ~id:3 ~src:p.TG.p_s ~dst:b_addr () in
             Node.send p.TG.p_s
               { pkt with
                 Packet.options =
                   [Ipv4.Ip_option.Nop; Ipv4.Ip_option.Nop;
                    Ipv4.Ip_option.Nop; Ipv4.Ip_option.Nop] });
         run p;
         let plain_latency =
           Time.to_us !arrival_plain - Time.to_us (Time.of_sec 2.0)
         in
         let optioned_latency =
           Time.to_us !arrival - Time.to_us (Time.of_sec 3.0)
         in
         check Alcotest.bool "slow path costs more" true
           (optioned_latency > plain_latency)) ]

let suite =
  [ ("baseline-codecs", codec_tests); ("sunshine-postel", sp_tests);
    ("columbia", columbia_tests); ("sony-vip", sony_tests);
    ("matsushita", matsushita_tests); ("ibm-lsrr", ibm_tests) ]
