(* Property-based tests of protocol-level invariants: random roaming
   itineraries always converge, the cache behaves like its functional
   model, re-tunneling respects the list bound, and the rate limiter never
   violates its interval. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let qtest = QCheck_alcotest.to_alcotest

(* --- random roaming always converges --- *)

(* Build figure1 + second cell; apply a random itinerary of moves over
   {netB(home), netD, netE}; after quiescence, a packet from S must be
   delivered, the home-agent database must match the mobile host's own
   idea of its location, and a second packet must take the optimal path
   for that location. *)
let roaming_converges (seed, stops) =
  let f = TG.figure1 ~seed () in
  let topo = f.TG.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let net_e = Topology.add_lan topo ~net:5 "netE" in
  let r5n = Topology.add_router topo "R5" [(f.TG.net_c, 3); (net_e, 1)] in
  Topology.compute_routes topo;
  let r5 = Agent.create r5n in
  Agent.enable_foreign_agent r5
    ~iface:(Option.get (Node.iface_to r5n (Net.Lan.prefix net_e)));
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  let m_addr = Agent.address f.TG.m in
  let lan_of = function
    | 0 -> f.TG.net_b
    | 1 -> f.TG.net_d
    | _ -> net_e
  in
  List.iteri
    (fun k stop ->
       Workload.Mobility.move_at topo f.TG.m
         ~at:(Time.of_sec (1.0 +. float_of_int k)) (lan_of stop))
    stops;
  let settle = 1.0 +. float_of_int (List.length stops) +. 1.0 in
  Workload.Traffic.at traffic (Time.of_sec settle) (fun () ->
      Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ());
  Workload.Traffic.at traffic (Time.of_sec (settle +. 1.0)) (fun () ->
      Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ());
  Topology.run ~until:(Time.of_sec (settle +. 4.0)) topo;
  let records = Workload.Metrics.records metrics in
  let all_delivered =
    List.for_all (fun r -> r.Workload.Metrics.delivered_at <> None) records
  in
  let db_matches =
    match Agent.home_agent f.TG.r2, Agent.mobile f.TG.m with
    | Some ha, Some mh ->
      let db = Mhrp.Home_agent.location ha m_addr in
      (match mh.Mhrp.Mobile_host.phase with
       | Mhrp.Mobile_host.At_home -> db = Some Addr.zero
       | Mhrp.Mobile_host.Registered fa -> db = Some fa
       | _ -> false)
    | _ -> false
  in
  all_delivered && db_matches

let arb_itinerary =
  QCheck.make
    ~print:(fun (seed, stops) ->
        Printf.sprintf "seed=%d stops=[%s]" seed
          (String.concat ";" (List.map string_of_int stops)))
    QCheck.Gen.(
      pair (int_bound 1000)
        (list_size (int_range 1 6) (int_bound 2)))

(* --- location cache vs a functional model --- *)

type cache_op =
  | Insert of int * int
  | Delete of int
  | Find of int

let arb_cache_ops =
  let gen_op =
    QCheck.Gen.(
      frequency
        [ (4, map2 (fun m f -> Insert (m, f)) (int_bound 20) (int_range 1 20));
          (1, map (fun m -> Delete m) (int_bound 20));
          (3, map (fun m -> Find m) (int_bound 20)) ])
  in
  QCheck.make
    ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | Insert (m, f) -> Printf.sprintf "I(%d,%d)" m f
               | Delete m -> Printf.sprintf "D(%d)" m
               | Find m -> Printf.sprintf "F(%d)" m)
             ops))
    QCheck.Gen.(list_size (int_range 0 200) gen_op)

(* With capacity >= key-space the cache must agree exactly with a Map. *)
let cache_matches_model ops =
  let cache = Mhrp.Location_cache.create ~capacity:32 in
  let module M = Map.Make (Int) in
  let model = ref M.empty in
  List.for_all
    (fun op ->
       match op with
       | Insert (m, f) ->
         Mhrp.Location_cache.insert cache ~mobile:(Addr.host 1 (m + 1))
           ~foreign_agent:(Addr.host 2 f);
         model := M.add m f !model;
         true
       | Delete m ->
         Mhrp.Location_cache.delete cache (Addr.host 1 (m + 1));
         model := M.remove m !model;
         true
       | Find m ->
         let got = Mhrp.Location_cache.find cache (Addr.host 1 (m + 1)) in
         let expect =
           Option.map (fun f -> Addr.host 2 f) (M.find_opt m !model)
         in
         got = expect)
    ops

(* --- re-tunneling invariants --- *)

let retunnel_list_bounded (max_list, hops) =
  let pkt =
    Ipv4.Packet.make ~proto:Ipv4.Proto.udp ~src:(Addr.host 100 1)
      ~dst:(Addr.host 2 10)
      (Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:1 ~dst_port:2 Bytes.empty))
  in
  let rec walk k pkt =
    if k >= hops then true
    else begin
      let me = Addr.host 50 (k + 1) in
      let next = Addr.host 50 (k + 2) in
      match Mhrp.Encap.retunnel ~max_prev_sources:max_list ~me ~new_dst:next pkt with
      | Some (Mhrp.Encap.Retunneled p)
      | Some (Mhrp.Encap.Retunneled_overflow { packet = p; _ }) ->
        (match Mhrp.Encap.header_of p with
         | Some h ->
           List.length h.Mhrp.Mhrp_header.prev_sources <= max_list
           && walk (k + 1) p
         | None -> false)
      | Some (Mhrp.Encap.Loop_detected _) -> true (* distinct addrs: cannot happen *)
      | None -> false
    end
  in
  walk 0
    (Mhrp.Encap.tunnel_by_agent ~agent:(Addr.host 100 1)
       ~foreign_agent:(Addr.host 50 1) pkt)

(* --- routing over random topologies --- *)

(* Generate a random connected internetwork: [n] routers, each attached to
   its own stub LAN, joined by a random spanning tree plus extra random
   links.  Every pair of stub hosts must be mutually reachable and the
   computed routes must contain no forwarding loops (delivery implies
   loop-freedom: a loop would eat the TTL and drop). *)
let random_topology_routes (seed, n, extra_links) =
  let topo = Topology.create ~seed () in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let rng = Netsim.Rng.of_int (seed + 1) in
  let stubs =
    Array.init n (fun i ->
        Topology.add_lan topo ~net:(10 + i) (Printf.sprintf "stub%d" i))
  in
  let link_lans = ref [] in
  let next_link = ref 0 in
  let attachments = Array.make n [] in
  let link a b =
    let lan =
      Topology.add_lan topo ~net:(100 + !next_link)
        (Printf.sprintf "link%d" !next_link)
    in
    incr next_link;
    link_lans := lan :: !link_lans;
    attachments.(a) <- (lan, 1) :: attachments.(a);
    attachments.(b) <- (lan, 2) :: attachments.(b)
  in
  (* spanning tree *)
  for i = 1 to n - 1 do
    link (Netsim.Rng.int rng i) i
  done;
  for _ = 1 to extra_links do
    let a = Netsim.Rng.int rng n and b = Netsim.Rng.int rng n in
    if a <> b then link a b
  done;
  let _routers =
    Array.init n (fun i ->
        Topology.add_router topo (Printf.sprintf "r%d" i)
          ((stubs.(i), 1) :: attachments.(i)))
  in
  let hosts =
    Array.init n (fun i ->
        Topology.add_host topo (Printf.sprintf "h%d" i) stubs.(i) 10)
  in
  Topology.compute_routes topo;
  let delivered = Hashtbl.create 16 in
  Array.iter
    (fun h ->
       Node.set_proto_handler h Ipv4.Proto.udp (fun node pkt ->
           Hashtbl.replace delivered
             (Node.primary_addr node, pkt.Ipv4.Packet.id) ()))
    hosts;
  (* a few random host pairs *)
  let pairs =
    List.init (min 6 (n * (n - 1))) (fun k ->
        let a = Netsim.Rng.int rng n in
        let b = (a + 1 + Netsim.Rng.int rng (n - 1)) mod n in
        (k + 1, a, b))
  in
  List.iter
    (fun (id, a, b) ->
       Node.send hosts.(a)
         (Ipv4.Packet.make ~id ~proto:Ipv4.Proto.udp
            ~src:(Node.primary_addr hosts.(a))
            ~dst:(Node.primary_addr hosts.(b))
            (Ipv4.Udp.encode
               (Ipv4.Udp.make ~src_port:1 ~dst_port:2 Bytes.empty))))
    pairs;
  Topology.run ~until:(Time.of_sec 30.0) topo;
  List.for_all
    (fun (id, _, b) ->
       Hashtbl.mem delivered (Node.primary_addr hosts.(b), id))
    pairs

let arb_topology =
  QCheck.make
    ~print:(fun (seed, n, extra) ->
        Printf.sprintf "seed=%d n=%d extra=%d" seed n extra)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 2 12) (int_range 0 8))

(* --- rate limiter interval invariant --- *)

let limiter_respects_interval times =
  let r =
    Mhrp.Rate_limiter.create ~capacity:1024
      ~min_interval:(Time.of_ms 100)
  in
  let sorted = List.sort compare (List.map (fun t -> t mod 10_000_000) times) in
  let last_allowed = ref None in
  List.for_all
    (fun us ->
       let now = Time.of_us us in
       let ok = Mhrp.Rate_limiter.allow r ~now (Addr.host 1 1) in
       if ok then begin
         let fine =
           match !last_allowed with
           | None -> true
           | Some prev -> us - prev >= 100_000
         in
         last_allowed := Some us;
         fine
       end
       else true)
    sorted

(* --- decoders are total --- *)

(* Hostile or corrupted wire bytes must never raise out of a decoder:
   the authenticated control plane rejects them with [None] and counts
   the drop, it does not crash the agent. *)
let decoders_total s =
  let buf = Bytes.of_string s in
  let no_raise name f =
    match f () with
    | _ -> true
    | exception e ->
      QCheck.Test.fail_reportf "%s raised %s on %S" name
        (Printexc.to_string e) s
  in
  no_raise "Control.decode" (fun () -> Mhrp.Control.decode buf)
  && no_raise "Extension.decode" (fun () -> Auth.Extension.decode buf)
  && no_raise "Extension.split" (fun () -> Auth.Extension.split buf)
  && no_raise "Extension.decode_at" (fun () ->
      Auth.Extension.decode_at buf 0)
  && no_raise "Icmp.decode_opt" (fun () -> Ipv4.Icmp.decode_opt buf)

(* Truncating a genuine authenticated message anywhere must yield a clean
   rejection, never an exception, and never a still-valid extension. *)
let truncations_rejected (len, nonce) =
  let key = Auth.Siphash.of_string "property key" in
  let payload =
    Mhrp.Control.encode
      (Mhrp.Control.Reg_request
         { mobile = Addr.host 2 10; foreign_agent = Addr.host 4 1 })
  in
  let ext =
    Auth.Extension.sign ~key ~spi:9 ~timestamp:(Time.of_ms 250)
      ~nonce:(Int64.of_int nonce) payload
  in
  let wire = Bytes.cat payload (Auth.Extension.encode ext) in
  let cut = min len (Bytes.length wire - 1) in
  let truncated = Bytes.sub wire 0 cut in
  (match Auth.Extension.split truncated with
   | None -> true
   | Some (prefix, ext') ->
     (* A shorter prefix can still parse as some extension, but the MAC
        must no longer cover this payload. *)
     not (Auth.Extension.verify ~key prefix ext'))
  && (match Mhrp.Control.decode truncated with _ -> true)

(* Signing and verifying are inverses for any payload/nonce/timestamp. *)
let sign_verify_roundtrip (s, nonce, ts_us) =
  let key = Auth.Siphash.of_string "roundtrip" in
  let payload = Bytes.of_string s in
  let ext =
    Auth.Extension.sign ~key ~spi:1 ~timestamp:(Time.of_us ts_us)
      ~nonce:(Int64.of_int nonce) payload
  in
  match Auth.Extension.split (Bytes.cat payload (Auth.Extension.encode ext)) with
  | Some (payload', ext') ->
    Bytes.equal payload payload'
    && Auth.Extension.verify ~key payload' ext'
  | None -> false

let suite =
  [ ( "protocol-properties",
      [ qtest
          (QCheck.Test.make ~name:"random roaming always converges"
             ~count:15 arb_itinerary roaming_converges);
        qtest
          (QCheck.Test.make
             ~name:"location cache agrees with a map model (no eviction)"
             ~count:200 arb_cache_ops cache_matches_model);
        qtest
          (QCheck.Test.make
             ~name:"re-tunnel chains never exceed the list bound" ~count:100
             QCheck.(pair (int_range 1 8) (int_range 1 40))
             retunnel_list_bounded);
        qtest
          (QCheck.Test.make
             ~name:"random connected topologies route every host pair"
             ~count:25 arb_topology random_topology_routes);
        qtest
          (QCheck.Test.make
             ~name:"rate limiter never allows two sends within the interval"
             ~count:200
             QCheck.(list_of_size Gen.(int_range 0 100) (int_bound 10_000_000))
             limiter_respects_interval);
        qtest
          (QCheck.Test.make
             ~name:"decoders never raise on arbitrary bytes" ~count:500
             QCheck.(string_of_size Gen.(int_range 0 64))
             decoders_total);
        qtest
          (QCheck.Test.make
             ~name:"truncated authenticated messages are cleanly rejected"
             ~count:200
             QCheck.(pair (int_range 0 64) (int_bound 1_000_000))
             truncations_rejected);
        qtest
          (QCheck.Test.make ~name:"sign/verify roundtrip" ~count:200
             QCheck.(triple (string_of_size Gen.(int_range 0 64))
                       (int_bound 1_000_000) (int_bound 1_000_000_000))
             sign_verify_roundtrip) ] ) ]
