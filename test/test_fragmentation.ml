(* Tests for IP fragmentation and reassembly, and its interaction with
   tunneling: encapsulation overhead can push a packet past a link MTU,
   which is part of why the paper stresses MHRP's "significant savings in
   space overhead". *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let mk ?(id = 1) ?dont_fragment ~size () =
  Packet.make ~id ?dont_fragment ~proto:Ipv4.Proto.udp ~src:(Addr.host 1 1)
    ~dst:(Addr.host 2 2)
    (Bytes.init size (fun i -> Char.chr (i land 0xFF)))

let unit_tests =
  [ Alcotest.test_case "small packets pass through unchanged" `Quick
      (fun () ->
         let pkt = mk ~size:100 () in
         check Alcotest.int "one piece" 1
           (List.length (Packet.fragment pkt ~mtu:1500)));
    Alcotest.test_case "fragments fit the mtu and cover the payload"
      `Quick (fun () ->
          let pkt = mk ~size:1000 () in
          let frags = Packet.fragment pkt ~mtu:300 in
          check Alcotest.bool "several" true (List.length frags > 1);
          List.iter
            (fun f ->
               check Alcotest.bool "fits" true
                 (Packet.total_length f <= 300))
            frags;
          let covered =
            List.fold_left
              (fun acc f -> acc + Bytes.length f.Packet.payload)
              0 frags
          in
          check Alcotest.int "every byte present" 1000 covered;
          (* only the last fragment clears more_fragments *)
          let rec last = function
            | [] -> Alcotest.fail "empty"
            | [x] -> x
            | _ :: rest -> last rest
          in
          check Alcotest.bool "last clears MF" false
            (last frags).Packet.more_fragments;
          check Alcotest.bool "others set MF" true
            (List.for_all
               (fun f -> f.Packet.more_fragments)
               (List.filteri
                  (fun i _ -> i < List.length frags - 1)
                  frags)));
    Alcotest.test_case "df refuses to fragment" `Quick (fun () ->
        let pkt = mk ~dont_fragment:true ~size:1000 () in
        Alcotest.check_raises "df"
          (Invalid_argument "Packet.fragment: dont_fragment set") (fun () ->
            ignore (Packet.fragment pkt ~mtu:300)));
    Alcotest.test_case "fragment wire roundtrip keeps flags" `Quick
      (fun () ->
         let pkt = mk ~size:600 () in
         let frags = Packet.fragment pkt ~mtu:300 in
         List.iter
           (fun f ->
              let d = Packet.decode (Packet.encode f) in
              check Alcotest.int "offset" f.Packet.frag_offset
                d.Packet.frag_offset;
              check Alcotest.bool "mf" f.Packet.more_fragments
                d.Packet.more_fragments)
           frags);
    Alcotest.test_case "reassembly restores the original payload" `Quick
      (fun () ->
         let pkt = mk ~size:777 () in
         let frags = Packet.fragment pkt ~mtu:256 in
         let r = Packet.Reassembly.create () in
         let result =
           List.fold_left
             (fun acc f ->
                match Packet.Reassembly.add r ~now:0 f with
                | Some whole -> Some whole
                | None -> acc)
             None frags
         in
         match result with
         | Some whole ->
           check Alcotest.string "payload"
             (Bytes.to_string pkt.Packet.payload)
             (Bytes.to_string whole.Packet.payload);
           check Alcotest.bool "not a fragment" false
             (Packet.is_fragment whole)
         | None -> Alcotest.fail "never completed");
    Alcotest.test_case "reassembly works out of order" `Quick (fun () ->
        let pkt = mk ~size:777 () in
        let frags = List.rev (Packet.fragment pkt ~mtu:256) in
        let r = Packet.Reassembly.create () in
        let result =
          List.fold_left
            (fun acc f ->
               match Packet.Reassembly.add r ~now:0 f with
               | Some whole -> Some whole
               | None -> acc)
            None frags
        in
        check Alcotest.bool "completed" true (result <> None));
    Alcotest.test_case "incomplete buffers expire" `Quick (fun () ->
        let pkt = mk ~size:777 () in
        let frags = Packet.fragment pkt ~mtu:256 in
        let r = Packet.Reassembly.create () in
        (match frags with
         | first :: _ ->
           ignore (Packet.Reassembly.add r ~now:0 first)
         | [] -> Alcotest.fail "no fragments");
        check Alcotest.int "pending" 1 (Packet.Reassembly.pending r);
        let dropped =
          Packet.Reassembly.expire r ~now:31_000_000
            ~older_than_us:30_000_000
        in
        check Alcotest.int "expired" 1 dropped;
        check Alcotest.int "cleared" 0 (Packet.Reassembly.pending r));
    Alcotest.test_case "duplicated fragments are harmless" `Quick
      (fun () ->
         let pkt = mk ~size:700 () in
         let frags = Packet.fragment pkt ~mtu:256 in
         let r = Packet.Reassembly.create () in
         (* feed every fragment twice, interleaved *)
         let result =
           List.fold_left
             (fun acc f ->
                let first = Packet.Reassembly.add r ~now:0 f in
                let second = Packet.Reassembly.add r ~now:0 f in
                match first, second, acc with
                | Some w, _, _ | _, Some w, _ -> Some w
                | _, _, old -> old)
             None frags
         in
         match result with
         | Some whole ->
           check Alcotest.string "payload"
             (Bytes.to_string pkt.Packet.payload)
             (Bytes.to_string whole.Packet.payload)
         | None -> Alcotest.fail "never completed");
    qtest
      (QCheck.Test.make
         ~name:"fragment/reassemble identity (random sizes and MTUs)"
         ~count:200
         QCheck.(pair (int_range 1 4000) (int_range 96 1500))
         (fun (size, mtu) ->
            let pkt = mk ~size () in
            let frags = Packet.fragment pkt ~mtu in
            let r = Packet.Reassembly.create () in
            let result =
              List.fold_left
                (fun acc f ->
                   match Packet.Reassembly.add r ~now:0 f with
                   | Some whole -> Some whole
                   | None -> acc)
                None frags
            in
            match result with
            | Some whole ->
              Bytes.equal whole.Packet.payload pkt.Packet.payload
            | None -> false)) ]

let e2e_tests =
  [ Alcotest.test_case
      "large datagram crosses a small-MTU link and reassembles" `Quick
      (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l2 = Topology.add_lan topo ~net:2 ~mtu:300 "l2-narrow" in
         let _r = Topology.add_router topo "r" [(l1, 1); (l2, 1)] in
         let a = Topology.add_host topo "a" l1 10 in
         let b = Topology.add_host topo "b" l2 10 in
         Topology.compute_routes topo;
         let got = ref None in
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ pkt ->
             got := Some pkt);
         let data = Bytes.init 900 (fun i -> Char.chr (i land 0xFF)) in
         Node.send a
           (Packet.make ~id:9 ~proto:Ipv4.Proto.udp
              ~src:(Node.primary_addr a) ~dst:(Node.primary_addr b)
              (Ipv4.Udp.encode
                 (Ipv4.Udp.make ~src_port:1 ~dst_port:2 data)));
         Topology.run topo;
         match !got with
         | Some pkt ->
           let udp = Ipv4.Udp.decode pkt.Packet.payload in
           check Alcotest.string "payload intact" (Bytes.to_string data)
             (Bytes.to_string udp.Ipv4.Udp.data)
         | None -> Alcotest.fail "not delivered");
    Alcotest.test_case
      "tunnel overhead alone pushes a full-MTU packet into fragmentation"
      `Quick (fun () ->
          (* wireless cell with the same 1500 MTU: a 1500-byte datagram
             fits plain but fragments once the 12-byte MHRP header is
             added *)
          let f = TG.figure1 () in
          let topo = f.TG.topo in
          let metrics = Workload.Metrics.create topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine topo)
          in
          Workload.Metrics.watch_receiver metrics f.TG.m;
          let m_addr = Agent.address f.TG.m in
          let payload = 1500 - 20 - 8 in (* exactly MTU-sized datagram *)
          Workload.Traffic.at traffic (Time.of_sec 0.5) (fun () ->
              Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr
                ~size:payload ());
          Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0)
            f.TG.net_d;
          Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
              Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr
                ~size:payload ());
          Topology.run ~until:(Time.of_sec 4.0) topo;
          let rs = Workload.Metrics.records metrics in
          check Alcotest.bool "at home: delivered unfragmented" true
            ((List.nth rs 0).Workload.Metrics.delivered_at <> None);
          check Alcotest.bool "away: delivered via fragmentation" true
            ((List.nth rs 1).Workload.Metrics.delivered_at <> None);
          (* the tunneled one crossed more frames than LAN hops: its
             tunnel leg was fragmented *)
          check Alcotest.bool "extra frames observed" true
            ((List.nth rs 1).Workload.Metrics.hops
             > (List.nth rs 0).Workload.Metrics.hops)) ]

let suite =
  [ ("fragmentation", unit_tests); ("fragmentation-e2e", e2e_tests) ]
