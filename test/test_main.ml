let () =
  Alcotest.run "mhrp"
    (List.concat
       [ Test_netsim.suite;
         Test_ipv4.suite;
         Test_net.suite;
         Test_mhrp_core.suite;
         Test_agent.suite;
         Test_robustness.suite;
         Test_baselines.suite;
         Test_workload.suite;
         Test_extensions.suite;
         Test_properties.suite;
         Test_misc_behaviour.suite;
         Test_fragmentation.suite;
         Test_reliable.suite;
         Test_transport.suite;
         Test_baselines_stale.suite;
         Test_edges.suite;
         Test_auth.suite;
         Test_fault.suite;
         Test_lsr.suite;
         Test_obs.suite;
         Test_compact.suite;
         Test_hierarchy.suite;
         Test_parallel.suite;
         Test_fastpath.suite ])
