(* Unit and property tests for the discrete-event engine substrate. *)

module Time = Netsim.Time
module Rng = Netsim.Rng
module Eq = Netsim.Event_queue
module Engine = Netsim.Engine
module Stats = Netsim.Stats

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Time --- *)

let time_tests =
  [ Alcotest.test_case "conversions" `Quick (fun () ->
        check Alcotest.int "ms" 5_000 (Time.to_us (Time.of_ms 5));
        check Alcotest.int "sec" 1_500_000 (Time.to_us (Time.of_sec 1.5));
        check (Alcotest.float 1e-9) "roundtrip" 2.25
          (Time.to_sec (Time.of_sec 2.25)));
    Alcotest.test_case "negative rejected" `Quick (fun () ->
        Alcotest.check_raises "of_us" (Invalid_argument "Time.of_us: negative")
          (fun () -> ignore (Time.of_us (-1)));
        Alcotest.check_raises "diff"
          (Invalid_argument "Time.diff: negative interval") (fun () ->
            ignore (Time.diff (Time.of_us 1) (Time.of_us 2))));
    Alcotest.test_case "arithmetic and order" `Quick (fun () ->
        let a = Time.of_ms 3 and b = Time.of_ms 7 in
        check Alcotest.int "add" 10_000 (Time.to_us (Time.add a b));
        check Alcotest.int "diff" 4_000 (Time.to_us (Time.diff b a));
        check Alcotest.bool "lt" true Time.(a < b);
        check Alcotest.bool "ge" true Time.(b >= a));
    Alcotest.test_case "pp" `Quick (fun () ->
        check Alcotest.string "format" "1.250000s"
          (Time.to_string (Time.of_ms 1250)));
    qtest
      (QCheck.Test.make ~name:"add/diff inverse" ~count:200
         QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
         (fun (a, b) ->
            let ta = Time.of_us a and tb = Time.of_us b in
            Time.to_us (Time.diff (Time.add ta tb) tb) = a)) ]

(* --- Rng --- *)

let rng_tests =
  [ Alcotest.test_case "deterministic for equal seeds" `Quick (fun () ->
        let a = Rng.of_int 7 and b = Rng.of_int 7 in
        for _ = 1 to 100 do
          check Alcotest.int "draw" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "split streams are independent" `Quick (fun () ->
        let a = Rng.of_int 7 in
        let b = Rng.split a in
        let xs = List.init 50 (fun _ -> Rng.int a 1_000_000) in
        let ys = List.init 50 (fun _ -> Rng.int b 1_000_000) in
        check Alcotest.bool "different" true (xs <> ys));
    Alcotest.test_case "copy preserves stream" `Quick (fun () ->
        let a = Rng.of_int 3 in
        ignore (Rng.int a 10);
        let b = Rng.copy a in
        check Alcotest.int "same next" (Rng.int a 1000) (Rng.int b 1000));
    Alcotest.test_case "bounds validation" `Quick (fun () ->
        let a = Rng.of_int 1 in
        Alcotest.check_raises "int" (Invalid_argument "Rng.int: bound <= 0")
          (fun () -> ignore (Rng.int a 0)));
    qtest
      (QCheck.Test.make ~name:"int within bound" ~count:500
         QCheck.(pair small_int (int_range 1 10_000))
         (fun (seed, bound) ->
            let r = Rng.of_int seed in
            let v = Rng.int r bound in
            v >= 0 && v < bound));
    qtest
      (QCheck.Test.make ~name:"int_in within range" ~count:500
         QCheck.(triple small_int (int_range (-100) 100) (int_range 0 1000))
         (fun (seed, lo, span) ->
            let r = Rng.of_int seed in
            let v = Rng.int_in r lo (lo + span) in
            v >= lo && v <= lo + span));
    qtest
      (QCheck.Test.make ~name:"float within bound" ~count:500
         QCheck.small_int (fun seed ->
             let r = Rng.of_int seed in
             let v = Rng.float r 5.0 in
             v >= 0.0 && v < 5.0));
    Alcotest.test_case "exponential positive with given mean" `Quick
      (fun () ->
         let r = Rng.of_int 11 in
         let acc = Stats.Acc.create () in
         for _ = 1 to 20_000 do
           let v = Rng.exponential r 4.0 in
           check Alcotest.bool "positive" true (v >= 0.0);
           Stats.Acc.add acc v
         done;
         let mean = Stats.Acc.mean acc in
         check Alcotest.bool "mean close to 4"
           true (mean > 3.8 && mean < 4.2));
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let r = Rng.of_int 5 in
        let a = Array.init 100 Fun.id in
        Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        check (Alcotest.array Alcotest.int) "permutation"
          (Array.init 100 Fun.id) sorted) ]

(* --- Event queue --- *)

let eq_tests =
  [ Alcotest.test_case "pops in time order" `Quick (fun () ->
        let q = Eq.create () in
        ignore (Eq.push q (Time.of_us 30) "c");
        ignore (Eq.push q (Time.of_us 10) "a");
        ignore (Eq.push q (Time.of_us 20) "b");
        let order =
          List.init 3 (fun _ ->
              match Eq.pop q with Some (_, x) -> x | None -> "?")
        in
        check (Alcotest.list Alcotest.string) "order" ["a"; "b"; "c"] order);
    Alcotest.test_case "FIFO within equal timestamps" `Quick (fun () ->
        let q = Eq.create () in
        for i = 0 to 9 do
          ignore (Eq.push q (Time.of_us 5) i)
        done;
        let order =
          List.init 10 (fun _ ->
              match Eq.pop q with Some (_, x) -> x | None -> -1)
        in
        check (Alcotest.list Alcotest.int) "fifo" (List.init 10 Fun.id)
          order);
    Alcotest.test_case "cancel removes exactly one event" `Quick (fun () ->
        let q = Eq.create () in
        let _h1 = Eq.push q (Time.of_us 1) 1 in
        let h2 = Eq.push q (Time.of_us 2) 2 in
        let _h3 = Eq.push q (Time.of_us 3) 3 in
        check Alcotest.bool "cancelled" true (Eq.cancel q h2);
        check Alcotest.bool "double-cancel" false (Eq.cancel q h2);
        check Alcotest.int "length" 2 (Eq.length q);
        let order =
          List.init 2 (fun _ ->
              match Eq.pop q with Some (_, x) -> x | None -> -1)
        in
        check (Alcotest.list Alcotest.int) "remaining" [1; 3] order);
    Alcotest.test_case "cancel after pop is refused" `Quick (fun () ->
        let q = Eq.create () in
        let h = Eq.push q (Time.of_us 1) () in
        ignore (Eq.pop q);
        check Alcotest.bool "gone" false (Eq.cancel q h));
    Alcotest.test_case "peek_time skips cancellations" `Quick (fun () ->
        let q = Eq.create () in
        let h = Eq.push q (Time.of_us 1) 1 in
        ignore (Eq.push q (Time.of_us 9) 2);
        ignore (Eq.cancel q h);
        check (Alcotest.option Alcotest.int) "peek" (Some 9)
          (Option.map Time.to_us (Eq.peek_time q)));
    qtest
      (QCheck.Test.make ~name:"heap pops sorted" ~count:100
         QCheck.(list_of_size Gen.(int_range 0 200) (int_bound 10_000))
         (fun times ->
            let q = Eq.create () in
            List.iter (fun t -> ignore (Eq.push q (Time.of_us t) t)) times;
            let rec drain acc =
              match Eq.pop q with
              | None -> List.rev acc
              | Some (_, v) -> drain (v :: acc)
            in
            let out = drain [] in
            out = List.stable_sort compare times));
    Alcotest.test_case "cancellation inside a tie group keeps FIFO order"
      `Quick (fun () ->
        let q = Eq.create () in
        let hs = List.init 6 (fun i -> (i, Eq.push q (Time.of_us 7) i)) in
        (* Cancel the middle of the group; survivors must keep their
           relative scheduling order, not re-sort around the hole. *)
        List.iter
          (fun (i, h) -> if i = 2 || i = 3 then ignore (Eq.cancel q h))
          hs;
        let rec drain acc =
          match Eq.pop q with
          | None -> List.rev acc
          | Some (_, v) -> drain (v :: acc)
        in
        check (Alcotest.list Alcotest.int) "survivors in order" [0; 1; 4; 5]
          (drain []));
    Alcotest.test_case "cancelling the head exposes the next event" `Quick
      (fun () ->
        let q = Eq.create () in
        let h = Eq.push q (Time.of_us 1) 1 in
        ignore (Eq.push q (Time.of_us 2) 2);
        check Alcotest.bool "cancelled" true (Eq.cancel q h);
        check Alcotest.int "length skips the corpse" 1 (Eq.length q);
        check
          (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
          "pop skips the corpse" (Some (2, 2))
          (Option.map (fun (t, v) -> (Time.to_us t, v)) (Eq.pop q));
        check Alcotest.bool "empty after" true (Eq.is_empty q));
    Alcotest.test_case "a stale handle never cancels a newer event" `Quick
      (fun () ->
        let q = Eq.create () in
        let h = Eq.push q (Time.of_us 5) "old" in
        check Alcotest.bool "first cancel" true (Eq.cancel q h);
        (* Same timestamp, scheduled after the cancellation: the retired
           handle must not alias it. *)
        ignore (Eq.push q (Time.of_us 5) "new");
        check Alcotest.bool "stale handle refused" false (Eq.cancel q h);
        check
          (Alcotest.option Alcotest.string)
          "newer event survives" (Some "new")
          (Option.map snd (Eq.pop q)));
    Alcotest.test_case "ties straddling a pop still fire in push order"
      `Quick (fun () ->
        let q = Eq.create () in
        ignore (Eq.push q (Time.of_us 5) "a");
        ignore (Eq.push q (Time.of_us 5) "b");
        check (Alcotest.option Alcotest.string) "first" (Some "a")
          (Option.map snd (Eq.pop q));
        (* Pushed after a pop, at the same instant: the sequence counter
           is monotone for the queue's lifetime, so "c" follows "b". *)
        ignore (Eq.push q (Time.of_us 5) "c");
        check (Alcotest.option Alcotest.string) "second" (Some "b")
          (Option.map snd (Eq.pop q));
        check (Alcotest.option Alcotest.string) "third" (Some "c")
          (Option.map snd (Eq.pop q)));
    qtest
      (QCheck.Test.make
         ~name:"random cancellations preserve stable order of survivors"
         ~count:100
         QCheck.(
           list_of_size
             Gen.(int_range 0 100)
             (pair (int_bound 50) bool))
         (fun events ->
            (* Schedule everything, cancel the flagged ones, and require
               the drain to equal a stable sort of the survivors. *)
            let q = Eq.create () in
            let handles =
              List.mapi
                (fun i (t, dead) -> (t, i, dead, Eq.push q (Time.of_us t) (t, i)))
                events
            in
            List.iter
              (fun (_, _, dead, h) ->
                 if dead then
                   ignore (Eq.cancel q h))
              handles;
            let rec drain acc =
              match Eq.pop q with
              | None -> List.rev acc
              | Some (_, v) -> drain (v :: acc)
            in
            let expected =
              List.filter_map
                (fun (t, i, dead, _) -> if dead then None else Some (t, i))
                handles
              |> List.stable_sort (fun (t, _) (t', _) -> compare t t')
            in
            drain [] = expected)) ]

(* --- Engine --- *)

let engine_tests =
  [ Alcotest.test_case "clock advances to event times" `Quick (fun () ->
        let e = Engine.create () in
        let seen = ref [] in
        ignore (Engine.schedule e ~at:(Time.of_ms 5) (fun () ->
            seen := Time.to_us (Engine.now e) :: !seen));
        ignore (Engine.schedule e ~at:(Time.of_ms 2) (fun () ->
            seen := Time.to_us (Engine.now e) :: !seen));
        Engine.run e;
        check (Alcotest.list Alcotest.int) "times" [2000; 5000]
          (List.rev !seen));
    Alcotest.test_case "run ~until leaves later events queued" `Quick
      (fun () ->
         let e = Engine.create () in
         let fired = ref 0 in
         ignore (Engine.schedule e ~at:(Time.of_ms 1) (fun () -> incr fired));
         ignore (Engine.schedule e ~at:(Time.of_ms 10) (fun () -> incr fired));
         Engine.run ~until:(Time.of_ms 5) e;
         check Alcotest.int "one fired" 1 !fired;
         check Alcotest.int "one pending" 1 (Engine.pending e);
         check Alcotest.int "clock at until" 5000
           (Time.to_us (Engine.now e)));
    Alcotest.test_case "schedule in the past rejected" `Quick (fun () ->
        let e = Engine.create () in
        ignore (Engine.schedule e ~at:(Time.of_ms 2) (fun () -> ()));
        Engine.run e;
        Alcotest.check_raises "past"
          (Invalid_argument "Engine.schedule: time in the past") (fun () ->
            ignore (Engine.schedule e ~at:(Time.of_ms 1) (fun () -> ()))));
    Alcotest.test_case "cancel suppresses callback" `Quick (fun () ->
        let e = Engine.create () in
        let fired = ref false in
        let h = Engine.schedule e ~at:(Time.of_ms 1) (fun () ->
            fired := true)
        in
        check Alcotest.bool "cancelled" true (Engine.cancel e h);
        Engine.run e;
        check Alcotest.bool "not fired" false !fired);
    Alcotest.test_case "every fires periodically until deadline" `Quick
      (fun () ->
         let e = Engine.create () in
         let n = ref 0 in
         Engine.every e ~interval:(Time.of_ms 10) ~until:(Time.of_ms 45)
           (fun () -> incr n);
         Engine.run e;
         check Alcotest.int "fired 4 times" 4 !n);
    Alcotest.test_case "events scheduled during run are executed" `Quick
      (fun () ->
         let e = Engine.create () in
         let log = ref [] in
         ignore (Engine.schedule e ~at:(Time.of_ms 1) (fun () ->
             log := "outer" :: !log;
             ignore (Engine.schedule_after e ~delay:(Time.of_ms 1)
                       (fun () -> log := "inner" :: !log))));
         Engine.run e;
         check (Alcotest.list Alcotest.string) "both" ["outer"; "inner"]
           (List.rev !log);
         check Alcotest.int "processed" 2 (Engine.events_processed e)) ]

(* --- Stats --- *)

let stats_tests =
  [ Alcotest.test_case "acc mean/stddev" `Quick (fun () ->
        let a = Stats.Acc.create () in
        List.iter (Stats.Acc.add a) [2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0];
        check (Alcotest.float 1e-9) "mean" 5.0 (Stats.Acc.mean a);
        check Alcotest.int "count" 8 (Stats.Acc.count a);
        check (Alcotest.float 1e-6) "stddev" 2.13809 (Stats.Acc.stddev a);
        check (Alcotest.float 1e-9) "min" 2.0 (Stats.Acc.min a);
        check (Alcotest.float 1e-9) "max" 9.0 (Stats.Acc.max a));
    Alcotest.test_case "acc empty behaviour" `Quick (fun () ->
        let a = Stats.Acc.create () in
        check (Alcotest.float 0.0) "mean" 0.0 (Stats.Acc.mean a);
        Alcotest.check_raises "min" (Invalid_argument "Stats.Acc.min: empty")
          (fun () -> ignore (Stats.Acc.min a)));
    Alcotest.test_case "percentiles nearest-rank" `Quick (fun () ->
        let s = Stats.Samples.create () in
        List.iter (Stats.Samples.add s)
          (List.init 100 (fun i -> float_of_int (i + 1)));
        check (Alcotest.float 1e-9) "p50" 50.0 (Stats.Samples.percentile s 50.0);
        check (Alcotest.float 1e-9) "p99" 99.0 (Stats.Samples.percentile s 99.0);
        check (Alcotest.float 1e-9) "p100" 100.0
          (Stats.Samples.percentile s 100.0));
    Alcotest.test_case "hist buckets and mode" `Quick (fun () ->
        let h = Stats.Hist.create () in
        List.iter (Stats.Hist.add h) [3; 1; 3; 2; 3; 1];
        check Alcotest.int "mode" 3 (Stats.Hist.mode h);
        check Alcotest.int "count" 6 (Stats.Hist.count h);
        check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "buckets" [(1, 2); (2, 1); (3, 3)] (Stats.Hist.buckets h));
    qtest
      (QCheck.Test.make ~name:"acc mean matches naive mean" ~count:200
         QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_inclusive 100.0))
         (fun xs ->
            let a = Stats.Acc.create () in
            List.iter (Stats.Acc.add a) xs;
            let naive =
              List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
            in
            abs_float (Stats.Acc.mean a -. naive) < 1e-9)) ]

(* --- Trace --- *)

let trace_tests =
  [ Alcotest.test_case "emit and filter" `Quick (fun () ->
        let tr = Netsim.Trace.create () in
        Netsim.Trace.emit tr ~at:Time.zero ~node:"a" ~kind:"x" "one";
        Netsim.Trace.emit tr ~at:(Time.of_us 2) ~node:"b" ~kind:"y" "two";
        Netsim.Trace.emit tr ~at:(Time.of_us 3) ~node:"a" ~kind:"x" "three";
        check Alcotest.int "count x" 2 (Netsim.Trace.count tr ~kind:"x");
        check Alcotest.int "all" 3 (List.length (Netsim.Trace.events tr)));
    Alcotest.test_case "disabled trace records nothing" `Quick (fun () ->
        let tr = Netsim.Trace.create () in
        Netsim.Trace.set_enabled tr false;
        Netsim.Trace.emit tr ~at:Time.zero ~node:"a" ~kind:"x" "one";
        check Alcotest.int "empty" 0 (List.length (Netsim.Trace.events tr)));
    Alcotest.test_case "capacity keeps newest" `Quick (fun () ->
        let tr = Netsim.Trace.create ~capacity:10 () in
        for i = 1 to 25 do
          Netsim.Trace.emit tr ~at:(Time.of_us i) ~node:"n" ~kind:"k"
            (string_of_int i)
        done;
        let evs = Netsim.Trace.events tr in
        check Alcotest.bool "bounded" true (List.length evs <= 10);
        let newest = List.nth evs (List.length evs - 1) in
        check Alcotest.string "newest kept" "25" newest.Netsim.Trace.detail);
    Alcotest.test_case "wraparound keeps a contiguous newest suffix" `Quick
      (fun () ->
        let tr = Netsim.Trace.create ~capacity:8 () in
        for i = 1 to 100 do
          Netsim.Trace.emit tr ~at:(Time.of_us i) ~node:"n"
            ~kind:(if i mod 2 = 0 then "even" else "odd")
            (string_of_int i)
        done;
        let evs = Netsim.Trace.events tr in
        let n = List.length evs in
        check Alcotest.bool "bounded" true (n <= 8);
        check Alcotest.bool "non-empty" true (n > 0);
        (* Whatever survives the wrap must be exactly the newest [n]
           events, in emission order — no gaps, no stale entries. *)
        List.iteri
          (fun idx e ->
             check Alcotest.string
               (Printf.sprintf "slot %d" idx)
               (string_of_int (100 - n + 1 + idx))
               e.Netsim.Trace.detail)
          evs;
        (* The per-kind index stays consistent with the buffer. *)
        check Alcotest.int "kind counts partition the buffer" n
          (Netsim.Trace.count tr ~kind:"even"
           + Netsim.Trace.count tr ~kind:"odd");
        check Alcotest.int "find agrees with filter"
          (List.length
             (List.filter (fun e -> e.Netsim.Trace.kind = "even") evs))
          (List.length (Netsim.Trace.find tr ~kind:"even"))) ]

let suite =
  [ ("time", time_tests); ("rng", rng_tests); ("event-queue", eq_tests);
    ("engine", engine_tests); ("stats", stats_tests);
    ("trace", trace_tests) ]
