(* Integration tests of the MHRP protocol engine on the Figure 1
   internetwork: the Section 6 worked examples, registration, discovery,
   cache maintenance. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check
let addr_testable = Alcotest.testable Addr.pp Addr.equal

type env = {
  f : TG.figure1;
  metrics : Workload.Metrics.t;
  traffic : Workload.Traffic.t;
  m_addr : Addr.t;
}

let setup ?config ?snoop_routers () =
  let f = TG.figure1 ?config ?snoop_routers () in
  let metrics = Workload.Metrics.create f.TG.topo in
  let traffic =
    Workload.Traffic.create metrics (Topology.engine f.TG.topo)
  in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  Workload.Metrics.watch_receiver metrics f.TG.s;
  { f; metrics; traffic; m_addr = Agent.address f.TG.m }

let at env sec f =
  Workload.Traffic.at env.traffic (Time.of_sec sec) f

let send env sec ~src =
  at env sec (fun () ->
      Workload.Traffic.send_udp env.traffic ~src ~dst:env.m_addr ())

let move env sec lan =
  Workload.Mobility.move_at env.f.TG.topo env.f.TG.m ~at:(Time.of_sec sec)
    lan

let run ?(until = 10.0) env =
  Topology.run ~until:(Time.of_sec until) env.f.TG.topo

let records env = Workload.Metrics.records env.metrics
let nth_record env n = List.nth (records env) n

let delivered r = r.Workload.Metrics.delivered_at <> None

let overhead r =
  r.Workload.Metrics.max_bytes - r.Workload.Metrics.sent_bytes

let mobile_phase env =
  match Agent.mobile env.f.TG.m with
  | Some mh -> mh.Mhrp.Mobile_host.phase
  | None -> Alcotest.fail "M is not mobile"

let basic_tests =
  [ Alcotest.test_case "at home: zero overhead, plain routing (E9)" `Quick
      (fun () ->
         let env = setup () in
         send env 0.1 ~src:env.f.TG.s;
         run env;
         let r = nth_record env 0 in
         check Alcotest.bool "delivered" true (delivered r);
         check Alcotest.int "no added bytes" 0 (overhead r);
         check Alcotest.int "S->R1->R2->M is 3 LAN hops" 3
           r.Workload.Metrics.hops;
         check Alcotest.int "no tunnels anywhere" 0
           ((Agent.counters env.f.TG.r2).Mhrp.Counters.tunnels_built));
    Alcotest.test_case "registration sequence after a move (Section 3)"
      `Quick (fun () ->
          let env = setup () in
          let registered = ref [] in
          Agent.on_registered env.f.TG.m (fun fa ->
              registered := fa :: !registered);
          move env 1.0 env.f.TG.net_d;
          run env;
          check (Alcotest.list addr_testable) "registered with R4"
            [Addr.host 4 1] !registered;
          (match Agent.foreign_agent env.f.TG.r4 with
           | Some fa ->
             check Alcotest.bool "visitor listed" true
               (Mhrp.Foreign_agent.mem fa env.m_addr)
           | None -> Alcotest.fail "R4 should be a foreign agent");
          match Agent.home_agent env.f.TG.r2 with
          | Some ha ->
            check (Alcotest.option addr_testable) "HA database"
              (Some (Addr.host 4 1))
              (Mhrp.Home_agent.location ha env.m_addr)
          | None -> Alcotest.fail "R2 should be a home agent");
    Alcotest.test_case
      "first packet triangles via home agent with 12-byte overhead (6.1)"
      `Quick (fun () ->
          let env = setup () in
          move env 1.0 env.f.TG.net_d;
          send env 2.0 ~src:env.f.TG.s;
          run env;
          let r = nth_record env 0 in
          check Alcotest.bool "delivered" true (delivered r);
          check Alcotest.int "agent-built overhead" 12 (overhead r);
          check Alcotest.int "triangle: 5 LAN hops" 5
            r.Workload.Metrics.hops;
          check Alcotest.int "intercepted once" 1
            (Agent.counters env.f.TG.r2).Mhrp.Counters.intercepts);
    Alcotest.test_case
      "subsequent packets tunnel direct with 8-byte overhead (6.2)" `Quick
      (fun () ->
         let env = setup () in
         move env 1.0 env.f.TG.net_d;
         send env 2.0 ~src:env.f.TG.s;
         send env 3.0 ~src:env.f.TG.s;
         run env;
         let r = nth_record env 1 in
         check Alcotest.int "sender-built overhead" 8 (overhead r);
         check Alcotest.int "direct path: 4 LAN hops" 4
           r.Workload.Metrics.hops;
         check Alcotest.int "S tunneled it" 1
           (Agent.counters env.f.TG.s).Mhrp.Counters.tunnels_built;
         (* HA untouched the second time *)
         check Alcotest.int "one intercept only" 1
           (Agent.counters env.f.TG.r2).Mhrp.Counters.intercepts);
    Alcotest.test_case "location update populates the sender cache (4.3)"
      `Quick (fun () ->
          let env = setup () in
          let updates = ref [] in
          Agent.on_location_update env.f.TG.s
            (fun ~mobile ~foreign_agent ->
               updates := (mobile, foreign_agent) :: !updates);
          move env 1.0 env.f.TG.net_d;
          send env 2.0 ~src:env.f.TG.s;
          run env;
          check Alcotest.bool "cache entry" true
            (Mhrp.Location_cache.peek (Agent.cache env.f.TG.s) env.m_addr
             = Some (Addr.host 4 1));
          check Alcotest.bool "update received" true
            (List.exists
               (fun (m, fa) ->
                  Addr.equal m env.m_addr && Addr.equal fa (Addr.host 4 1))
               !updates));
    Alcotest.test_case
      "movement to a second cell: stale tunnel chases, caches heal (6.3)"
      `Quick (fun () ->
          (* add a second wireless cell E behind R3 *)
          let env = setup () in
          let net_e =
            Topology.add_lan env.f.TG.topo ~net:5 "netE"
          in
          let r5n =
            Topology.add_router env.f.TG.topo "R5"
              [(env.f.TG.net_c, 3); (net_e, 1)]
          in
          Topology.compute_routes env.f.TG.topo;
          let r5 = Agent.create r5n in
          Agent.enable_foreign_agent r5
            ~iface:(match Node.iface_to r5n (Net.Lan.prefix net_e) with
                | Some i -> i
                | None -> Alcotest.fail "iface");
          move env 1.0 env.f.TG.net_d;
          send env 2.0 ~src:env.f.TG.s; (* caches R4 *)
          move env 3.0 net_e;
          send env 4.0 ~src:env.f.TG.s; (* stale: S -> R4 -> ... -> M *)
          send env 5.0 ~src:env.f.TG.s; (* healed: direct to R5 *)
          run env;
          let r1 = nth_record env 1 and r2 = nth_record env 2 in
          check Alcotest.bool "stale packet still delivered" true
            (delivered r1);
          check Alcotest.bool "healed packet delivered" true (delivered r2);
          check Alcotest.bool "stale path longer" true
            (r1.Workload.Metrics.hops > r2.Workload.Metrics.hops);
          check (Alcotest.option addr_testable) "S now points at R5"
            (Some (Addr.host 5 1))
            (Mhrp.Location_cache.peek (Agent.cache env.f.TG.s) env.m_addr));
    Alcotest.test_case
      "forwarding pointer at the old FA shortcuts the chase (Section 2)"
      `Quick (fun () ->
          let env = setup () in
          let net_e = Topology.add_lan env.f.TG.topo ~net:5 "netE" in
          let r5n =
            Topology.add_router env.f.TG.topo "R5"
              [(env.f.TG.net_c, 3); (net_e, 1)]
          in
          Topology.compute_routes env.f.TG.topo;
          let r5 = Agent.create r5n in
          Agent.enable_foreign_agent r5
            ~iface:(Option.get (Node.iface_to r5n (Net.Lan.prefix net_e)));
          move env 1.0 env.f.TG.net_d;
          send env 2.0 ~src:env.f.TG.s;
          move env 3.0 net_e;
          send env 4.0 ~src:env.f.TG.s;
          run env;
          (* the old FA kept a pointer and re-tunneled directly: the home
             agent never saw the bounced packet *)
          check Alcotest.bool "old FA cached new location" true
            (Mhrp.Location_cache.peek (Agent.cache env.f.TG.r4) env.m_addr
             = Some (Addr.host 5 1));
          check Alcotest.int "R4 re-tunneled" 1
            (Agent.counters env.f.TG.r4).Mhrp.Counters.retunnels;
          check Alcotest.int "home agent bypassed" 1
            (Agent.counters env.f.TG.r2).Mhrp.Counters.intercepts);
    Alcotest.test_case
      "return home: stale tunnel reaches M, caches deleted, plain again (6.3)"
      `Quick (fun () ->
          let env = setup () in
          move env 1.0 env.f.TG.net_d;
          send env 2.0 ~src:env.f.TG.s;
          move env 3.0 env.f.TG.net_b;
          send env 4.0 ~src:env.f.TG.s; (* chased home *)
          send env 5.0 ~src:env.f.TG.s; (* plain *)
          run env;
          check Alcotest.bool "all delivered" true
            (List.for_all delivered (records env));
          check Alcotest.bool "at home" true
            (mobile_phase env = Mhrp.Mobile_host.At_home);
          check Alcotest.int "S cache emptied" 0
            (Mhrp.Location_cache.size (Agent.cache env.f.TG.s));
          let last = nth_record env 2 in
          check Alcotest.int "no overhead after return" 0 (overhead last);
          check Alcotest.int "3 hops again" 3 last.Workload.Metrics.hops);
    Alcotest.test_case "mobile host's own traffic flows out normally"
      `Quick (fun () ->
          let env = setup () in
          move env 1.0 env.f.TG.net_d;
          at env 2.0 (fun () ->
              Workload.Traffic.send_udp env.traffic ~src:env.f.TG.m
                ~dst:(Agent.address env.f.TG.s) ());
          run env;
          let r = nth_record env 0 in
          check Alcotest.bool "delivered to S" true (delivered r);
          check Alcotest.int "no tunneling outbound" 0 (overhead r));
    Alcotest.test_case "echo request to visiting mobile host is answered"
      `Quick (fun () ->
          let env = setup () in
          let replies = ref 0 in
          Agent.on_app_receive env.f.TG.s (fun pkt ->
              match Ipv4.Icmp.decode_opt pkt.Packet.payload with
              | Some (Ipv4.Icmp.Echo_reply _) -> incr replies
              | _ -> ());
          move env 1.0 env.f.TG.net_d;
          at env 2.0 (fun () ->
              Agent.send_ping env.f.TG.s ~id:9 ~dst:env.m_addr ());
          run env;
          check Alcotest.int "pong" 1 !replies);
    Alcotest.test_case "snooping router tunnels for non-MHRP hosts (6.2)"
      `Quick (fun () ->
          (* a plain host P on network A, no MHRP stack; R1 snoops and
             caches, then tunnels P's packets *)
          let env = setup () in
          let pn =
            Topology.add_host env.f.TG.topo "P" env.f.TG.net_a 11
          in
          Topology.compute_routes env.f.TG.topo;
          move env 1.0 env.f.TG.net_d;
          (* S's first packet makes R2 send a location update to S;
             R1 forwards that update and snoops it *)
          send env 2.0 ~src:env.f.TG.s;
          let got = ref 0 in
          Node.set_proto_handler pn Ipv4.Proto.udp (fun _ _ -> incr got);
          at env 3.0 (fun () ->
              let udp =
                Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.create 32)
              in
              Node.send pn
                (Packet.make ~id:500 ~proto:Ipv4.Proto.udp
                   ~src:(Node.primary_addr pn) ~dst:env.m_addr
                   (Ipv4.Udp.encode udp)));
          run env;
          check Alcotest.bool "R1 learned the location" true
            (Mhrp.Location_cache.peek (Agent.cache env.f.TG.r1) env.m_addr
             <> None);
          check Alcotest.int "R1 tunneled for the plain host" 1
            (Agent.counters env.f.TG.r1).Mhrp.Counters.tunnels_built);
    Alcotest.test_case "non-MHRP hosts silently ignore location updates"
      `Quick (fun () ->
          let env = setup ~snoop_routers:false () in
          let pn =
            Topology.add_host env.f.TG.topo "P" env.f.TG.net_a 11
          in
          Topology.compute_routes env.f.TG.topo;
          move env 1.0 env.f.TG.net_d;
          let got = ref 0 in
          Node.set_proto_handler pn Ipv4.Proto.udp (fun _ _ -> incr got);
          at env 2.0 (fun () ->
              let udp =
                Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.create 32)
              in
              Node.send pn
                (Packet.make ~id:501 ~proto:Ipv4.Proto.udp
                   ~src:(Node.primary_addr pn) ~dst:env.m_addr
                   (Ipv4.Udp.encode udp)));
          run env;
          (* P's packet triangles via the home agent every time, and the
             location updates R2 sends are dropped by P without error *)
          check Alcotest.int "delivered via HA" 1
            (Agent.counters env.f.TG.r2).Mhrp.Counters.intercepts;
          check Alcotest.int "P not crashed, no reply traffic" 0 !got);
    Alcotest.test_case "rate limiter caps repeated updates (4.3)" `Quick
      (fun () ->
         let env = setup () in
         move env 1.0 env.f.TG.net_d;
         (* burst of packets via the HA from a non-caching sender would
            trigger an update per packet; sender S caches after the first,
            so target the limiter directly instead *)
         at env 2.0 (fun () ->
             for _ = 1 to 5 do
               Agent.send_location_update env.f.TG.r2
                 ~dst:(Agent.address env.f.TG.s) ~mobile:env.m_addr
                 ~foreign_agent:(Addr.host 4 1)
             done);
         run env;
         check Alcotest.int "only one sent" 1
           (Mhrp.Rate_limiter.allowed (Agent.limiter env.f.TG.r2));
         check Alcotest.int "rest suppressed" 4
           (Mhrp.Rate_limiter.suppressed (Agent.limiter env.f.TG.r2)));
    Alcotest.test_case "explicit disconnect yields host-unreachable"
      `Quick (fun () ->
          let env = setup () in
          let errors = ref 0 in
          Agent.on_icmp_error env.f.TG.s (fun msg _ ->
              match msg with
              | Ipv4.Icmp.Dest_unreachable _ -> incr errors
              | _ -> ());
          move env 1.0 env.f.TG.net_d;
          at env 2.0 (fun () -> Agent.disconnect env.f.TG.m);
          send env 3.0 ~src:env.f.TG.s;
          run env;
          let r = nth_record env 0 in
          check Alcotest.bool "not delivered" true (not (delivered r));
          check Alcotest.int "sender told" 1 !errors) ]

let suite = [ ("agent-figure1", basic_tests) ]
