(* lib/parallel: the domain pool's ordering and error contracts, and the
   determinism contract of Sweep — the job count may only move wall-clock,
   never results or recorded metrics.  The last test enforces that end to
   end by diffing --no-info JSON dumps from two bench/main.exe runs. *)

module Pool = Parallel.Pool
module Sweep = Parallel.Sweep
module Json = Obs.Json
module Registry = Obs.Registry

let qtest = QCheck_alcotest.to_alcotest
let check_int = Alcotest.(check int)

(* --- pool --- *)

let test_pool_order () =
  let out =
    Pool.map ~jobs:4 ~f:(fun i x -> (i, x * 3)) (Array.init 100 Fun.id)
  in
  Array.iteri
    (fun i (j, y) ->
       check_int "index passed through" i j;
       check_int "value in input order" (i * 3) y)
    out

let test_pool_single_job () =
  let out = Pool.map ~jobs:1 ~f:(fun _ x -> x + 1) (Array.init 10 Fun.id) in
  Alcotest.(check (array int)) "serial path" (Array.init 10 succ) out

exception Boom of int

let test_pool_exception () =
  let f i () = if i mod 7 = 3 then raise (Boom i) in
  match Pool.map ~jobs:4 ~f (Array.make 40 ()) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "lowest failing index re-raised" 3 i

(* --- sweep determinism --- *)

(* a stand-in for a real trial: burns the per-trial random stream and
   records into the per-trial registry *)
let trial ctx n =
  let rng = Netsim.Rng.of_int ctx.Sweep.seed in
  let total = ref 0 in
  for _ = 1 to n + 1 do total := !total + Netsim.Rng.int rng 1000 done;
  Registry.counter ctx.Sweep.registry ~exp:"T"
    (Registry.key "total" [("i", string_of_int ctx.Sweep.index)])
    !total;
  !total

let dump reg =
  Json.to_string ~pretty:true
    (Registry.to_json ~include_info:false reg ~commit:"test")

let run_sweep ~jobs ~seed points =
  let reg = Registry.create () in
  let res = Sweep.run ~jobs ~into:reg ~seed ~trial points in
  (res, dump reg)

let test_sweep_jobs_equal () =
  let r1, d1 = run_sweep ~jobs:1 ~seed:7 [3; 5; 8; 13; 2; 9] in
  let r4, d4 = run_sweep ~jobs:4 ~seed:7 [3; 5; 8; 13; 2; 9] in
  Alcotest.(check (list int)) "trial results" r1 r4;
  Alcotest.(check string) "registry dumps" d1 d4

let prop_jobs_invariant =
  QCheck.Test.make ~name:"sweep independent of job count" ~count:50
    QCheck.(pair small_nat (small_list small_nat))
    (fun (seed, points) ->
       run_sweep ~jobs:1 ~seed points = run_sweep ~jobs:4 ~seed points)

(* --- end-to-end: the experiment harness across --jobs --- *)

let bench_exe = "../bench/main.exe"

let bench_dump jobs =
  let out = Filename.temp_file "sweep_eq" ".json" in
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let cmd =
    Filename.quote_command bench_exe ~stdout:null
      [ "E6"; "E17"; "--jobs"; string_of_int jobs; "--no-info"; "--json";
        out ]
  in
  (match Sys.command cmd with
   | 0 -> ()
   | n -> Alcotest.failf "%s exited with %d" cmd n);
  let s = In_channel.with_open_bin out In_channel.input_all in
  Sys.remove out;
  s

let test_bench_equivalence () =
  Alcotest.(check string) "E6/E17 dumps byte-identical across --jobs"
    (bench_dump 1) (bench_dump 4)

let suite =
  [ ( "parallel",
      [ Alcotest.test_case "pool preserves input order" `Quick
          test_pool_order;
        Alcotest.test_case "pool jobs=1 serial path" `Quick
          test_pool_single_job;
        Alcotest.test_case "pool re-raises first exception" `Quick
          test_pool_exception;
        Alcotest.test_case "sweep jobs=1 = jobs=4" `Quick
          test_sweep_jobs_equal;
        qtest prop_jobs_invariant;
        Alcotest.test_case "bench dumps byte-identical across --jobs" `Slow
          test_bench_equivalence ] ) ]
