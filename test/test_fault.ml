(* Tests for lib/fault — declarative failure schedules compiled onto the
   engine (ledger, windows, determinism), control-message loss semantics,
   and the reliable control plane healing injected losses. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check

let reliable_config =
  Mhrp.Config.make ~reliable_control:true ~control_rto:(Time.of_ms 300)
    ~control_retries:5 ()

(* Deterministic loss without the injector's probabilistic stream: drop
   the node's first outgoing port-434 datagram to each distinct peer, so
   every control exchange (Fa_connect to the foreign agent, Reg_request
   to the home agent, ...) loses exactly its original. *)
let drop_first_control_per_peer node =
  let dropped = ref 0 in
  let seen = Hashtbl.create 4 in
  Node.set_fault_filter node
    (Some
       (fun _ pkt ->
          if
            pkt.Ipv4.Packet.proto = Ipv4.Proto.udp
            && (match Ipv4.Udp.decode pkt.Ipv4.Packet.payload with
                | u -> u.Ipv4.Udp.dst_port = Mhrp.Control.port
                | exception Invalid_argument _ -> false)
            && not (Hashtbl.mem seen pkt.Ipv4.Packet.dst)
          then begin
            Hashtbl.replace seen pkt.Ipv4.Packet.dst ();
            incr dropped;
            false
          end
          else true));
  dropped

let injector_tests =
  [ Alcotest.test_case "ledger records every transition, in order" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let inj = Fault.Injector.create f.TG.topo in
         Fault.Injector.inject inj
           [ Fault.Schedule.Lan_down
               { lan = "netA"; at = Time.of_sec 2.0;
                 duration = Time.of_sec 1.0 };
             Fault.Schedule.Crash
               { node = "R4"; at = Time.of_sec 2.5;
                 duration = Time.of_sec 0.5 } ];
         Topology.run ~until:(Time.of_sec 5.0) f.TG.topo;
         (* lan-up and reboot coincide at 3.0 s; the flap was injected
            first, so its timer fires first *)
         check (Alcotest.list Alcotest.string) "transitions"
           ["lan-down netA"; "crash R4"; "lan-up netA"; "reboot R4"]
           (List.map snd (Fault.Injector.ledger inj));
         check Alcotest.bool "ledger times ascend" true
           (let ts = List.map fst (Fault.Injector.ledger inj) in
            List.sort Time.compare ts = ts);
         check Alcotest.int "events" 4 (Fault.Injector.events inj);
         check Alcotest.int "flaps" 1 (Fault.Injector.lan_flaps inj);
         check Alcotest.int "crashes" 1 (Fault.Injector.crashes inj);
         check
           (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
           "disruptive windows, sorted"
           [(Time.of_sec 2.0, Time.of_sec 3.0);
            (Time.of_sec 2.5, Time.of_sec 3.0)]
           (Fault.Injector.windows inj));
    Alcotest.test_case "unknown names are rejected" `Quick (fun () ->
        let f = TG.figure1 () in
        let inj = Fault.Injector.create f.TG.topo in
        Alcotest.check_raises "bad lan"
          (Invalid_argument "Fault.Injector: unknown lan nosuch") (fun () ->
            Fault.Injector.inject inj
              [ Fault.Schedule.Lan_down
                  { lan = "nosuch"; at = Time.zero;
                    duration = Time.of_sec 1.0 } ]));
    Alcotest.test_case "total control loss silences control, not data"
      `Quick (fun () ->
        (* 1 s advertisements, so control traffic exists inside the window *)
        let config =
          Mhrp.Config.make ~advert_interval:(Time.of_sec 1.0)
            ~advert_lifetime:(Time.of_sec 3.0) ()
        in
        let f = TG.figure1 ~config () in
        let topo = f.TG.topo in
        let metrics = Workload.Metrics.create topo in
        let traffic =
          Workload.Traffic.create metrics (Topology.engine topo)
        in
        Workload.Metrics.watch_receiver metrics f.TG.m;
        let inj = Fault.Injector.create topo in
        Fault.Injector.inject inj
          [ Fault.Schedule.Control_loss
              { rate = 1.0; from_ = Time.zero; until = Time.of_sec 10.0 } ];
        (* M stays home: plain LAN delivery needs no control exchange *)
        Workload.Traffic.cbr traffic ~src:f.TG.s
          ~dst:(Agent.address f.TG.m) ~start:(Time.of_sec 1.0)
          ~interval:(Time.of_ms 100) ~count:3 ();
        Topology.run ~until:(Time.of_sec 5.0) topo;
        check Alcotest.int "data delivered" 3
          (List.length (Workload.Metrics.delivered metrics));
        check Alcotest.bool "control was being dropped" true
          (Fault.Injector.control_losses inj > 0));
    Alcotest.test_case "same seed, same campaign" `Quick (fun () ->
        let campaign () =
          let f = TG.figure1 () in
          let topo = f.TG.topo in
          let metrics = Workload.Metrics.create topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine topo)
          in
          Workload.Metrics.watch_receiver metrics f.TG.m;
          let inj = Fault.Injector.create ~seed:99 topo in
          Fault.Injector.inject inj
            [ Fault.Schedule.Control_loss
                { rate = 0.5; from_ = Time.zero; until = Time.of_sec 20.0 };
              Fault.Schedule.Crash
                { node = "R4"; at = Time.of_sec 2.0;
                  duration = Time.of_sec 1.0 } ];
          Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0)
            f.TG.net_d;
          Workload.Traffic.cbr traffic ~src:f.TG.s
            ~dst:(Agent.address f.TG.m) ~start:(Time.of_sec 5.0)
            ~interval:(Time.of_ms 200) ~count:5 ();
          Topology.run ~until:(Time.of_sec 20.0) topo;
          ( List.length (Workload.Metrics.delivered metrics),
            Fault.Injector.control_losses inj,
            List.map snd (Fault.Injector.ledger inj) )
        in
        let a = campaign () and b = campaign () in
        check Alcotest.bool "bit-identical outcome" true (a = b)) ]

let reliable_control_tests =
  [ Alcotest.test_case
      "lost registration messages are retransmitted until acked" `Quick
      (fun () ->
         let f = TG.figure1 ~config:reliable_config () in
         let topo = f.TG.topo in
         let registered = ref [] in
         Agent.on_registered f.TG.m (fun fa -> registered := fa :: !registered);
         (* the mobile's original Fa_connect and Reg_request both vanish;
            only retransmission can complete this *)
         let dropped = drop_first_control_per_peer (Agent.node f.TG.m) in
         Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0)
           f.TG.net_d;
         Topology.run ~until:(Time.of_sec 8.0) topo;
         check Alcotest.int "both originals lost" 2 !dropped;
         check Alcotest.bool "registration completed anyway" true
           (!registered <> []);
         let c = Agent.counters f.TG.m in
         check Alcotest.bool "request retransmitted" true
           (c.Mhrp.Counters.reg_retransmissions >= 1);
         check Alcotest.bool "connect retransmitted" true
           (c.Mhrp.Counters.connect_retransmissions >= 1);
         match Agent.home_agent f.TG.r2 with
         | Some ha ->
           check
             (Alcotest.option (Alcotest.testable Addr.pp Addr.equal))
             "home agent learned the location" (Some (Addr.host 4 1))
             (Mhrp.Home_agent.location ha (Agent.address f.TG.m))
         | None -> Alcotest.fail "r2 must be a home agent");
    Alcotest.test_case
      "without reliable control the same loss strands the host" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let topo = f.TG.topo in
         let registered = ref [] in
         Agent.on_registered f.TG.m (fun fa -> registered := fa :: !registered);
         let dropped = drop_first_control_per_peer (Agent.node f.TG.m) in
         Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0)
           f.TG.net_d;
         Topology.run ~until:(Time.of_sec 8.0) topo;
         (* without retransmission the host never gets past the lost
            Fa_connect, so the Reg_request is never even sent *)
         check Alcotest.int "only the connect was lost" 1 !dropped;
         check Alcotest.bool "never completed" true (!registered = []);
         let c = Agent.counters f.TG.m in
         check Alcotest.int "nothing retransmitted" 0
           (c.Mhrp.Counters.reg_retransmissions
            + c.Mhrp.Counters.connect_retransmissions));
    Alcotest.test_case "lost Ha_sync is retransmitted until the replica acks"
      `Quick (fun () ->
        let f = TG.figure1 ~config:reliable_config () in
        let topo = f.TG.topo in
        let h2n = Topology.add_host topo ~router:false "H2" f.TG.net_b 2 in
        Topology.compute_routes topo;
        let h2 = Agent.create ~config:reliable_config h2n in
        Agent.enable_home_agent h2;
        let grp = Mhrp.Replication.group [f.TG.r2; h2] in
        Agent.add_mobile h2 (Agent.address f.TG.m);
        let m_addr = Agent.address f.TG.m in
        (* the primary's first sync to the replica vanishes *)
        let h2_addr = Agent.address h2 in
        let dropped = ref 0 in
        Node.set_fault_filter (Agent.node f.TG.r2)
          (Some
             (fun _ pkt ->
                if !dropped < 1 && Addr.equal pkt.Ipv4.Packet.dst h2_addr
                then begin
                  incr dropped;
                  false
                end
                else true));
        Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0)
          f.TG.net_d;
        Topology.run ~until:(Time.of_sec 8.0) topo;
        check Alcotest.int "original sync lost" 1 !dropped;
        check Alcotest.bool "replicas converged anyway" true
          (Mhrp.Replication.consistent grp m_addr);
        check Alcotest.int "one original sync" 1
          (Mhrp.Replication.sync_messages grp);
        check Alcotest.bool "sync retransmitted" true
          ((Agent.counters f.TG.r2).Mhrp.Counters.sync_retransmissions >= 1))
  ]

let suite =
  [ ("fault.injector", injector_tests);
    ("fault.reliable-control", reliable_control_tests) ]
