(* Tests for the MHRP data structures: the Figure 3 header, the
   encapsulation transforms of Sections 4.1/4.4, caches, rate limiting and
   control-message codecs. *)

module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module Header = Mhrp.Mhrp_header
module Encap = Mhrp.Encap

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let addr_testable = Alcotest.testable Addr.pp Addr.equal
let header_testable = Alcotest.testable Header.pp Header.equal

let a n = Addr.host 1 n
let arb_addr = QCheck.map (fun n -> Addr.host (n mod 100) (n mod 250 + 1))
    QCheck.(int_bound 100_000)

let sample_udp = Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:1234 ~dst_port:80
                                    (Bytes.of_string "payload-data"))

let plain_packet ?(src = a 1) ?(dst = Addr.host 2 10) () =
  Packet.make ~id:77 ~proto:Ipv4.Proto.udp ~src ~dst sample_udp

(* --- Mhrp_header (Figure 3) --- *)

let header_tests =
  [ Alcotest.test_case "empty header is exactly 8 bytes" `Quick (fun () ->
        let h = Header.make ~orig_proto:Ipv4.Proto.tcp ~mobile:(a 9) () in
        check Alcotest.int "length" 8 (Header.length h);
        check Alcotest.int "encoded" 8
          (Bytes.length (Header.encode h Bytes.empty)));
    Alcotest.test_case "each previous source adds 4 bytes" `Quick
      (fun () ->
         let h =
           Header.make ~prev_sources:[a 1; a 2; a 3]
             ~orig_proto:Ipv4.Proto.udp ~mobile:(a 9) ()
         in
         check Alcotest.int "length" 20 (Header.length h));
    Alcotest.test_case "roundtrip with transport bytes" `Quick (fun () ->
        let h =
          Header.make ~prev_sources:[a 4] ~orig_proto:Ipv4.Proto.udp
            ~mobile:(a 9) ()
        in
        let encoded = Header.encode h sample_udp in
        let h', transport = Header.decode encoded in
        check header_testable "header" h h';
        check Alcotest.string "transport" (Bytes.to_string sample_udp)
          (Bytes.to_string transport));
    Alcotest.test_case "checksum corruption detected" `Quick (fun () ->
        let h = Header.make ~orig_proto:Ipv4.Proto.udp ~mobile:(a 9) () in
        let encoded = Header.encode h sample_udp in
        Bytes.set encoded 4 '\xAA';
        Alcotest.check_raises "corrupt"
          (Invalid_argument "Mhrp_header.decode: truncated or corrupt")
          (fun () -> ignore (Header.decode encoded)));
    Alcotest.test_case "append respects max and truncate resets" `Quick
      (fun () ->
         let h =
           Header.make ~prev_sources:[a 1; a 2] ~orig_proto:Ipv4.Proto.udp
             ~mobile:(a 9) ()
         in
         (match Header.append_source_max ~max:3 h (a 3) with
          | `Ok h' ->
            check Alcotest.int "grew" 3 (List.length h'.Header.prev_sources);
            check Alcotest.bool "full now" true
              (Header.append_source_max ~max:3 h' (a 4) = `Full)
          | `Full -> Alcotest.fail "should fit");
         let t = Header.truncate h (a 7) in
         check (Alcotest.list addr_testable) "reset" [a 7]
           t.Header.prev_sources);
    Alcotest.test_case "membership and original sender" `Quick (fun () ->
        let h =
          Header.make ~prev_sources:[a 1; a 2] ~orig_proto:Ipv4.Proto.udp
            ~mobile:(a 9) ()
        in
        check Alcotest.bool "mem" true (Header.mem_source h (a 2));
        check Alcotest.bool "not mem" false (Header.mem_source h (a 3));
        check (Alcotest.option addr_testable) "sender" (Some (a 1))
          (Header.original_sender h));
    Alcotest.test_case "drop_last_source reverses appends" `Quick
      (fun () ->
         let h =
           Header.make ~prev_sources:[a 1; a 2; a 3]
             ~orig_proto:Ipv4.Proto.udp ~mobile:(a 9) ()
         in
         match Header.drop_last_source h with
         | Some (h', last) ->
           check addr_testable "last" (a 3) last;
           check (Alcotest.list addr_testable) "rest" [a 1; a 2]
             h'.Header.prev_sources
         | None -> Alcotest.fail "expected an entry");
    Alcotest.test_case "decode_prefix needs full header only" `Quick
      (fun () ->
         let h =
           Header.make ~prev_sources:[a 1] ~orig_proto:Ipv4.Proto.udp
             ~mobile:(a 9) ()
         in
         let encoded = Header.encode h sample_udp in
         (* cut inside the transport: header still parses *)
         let cut = Bytes.sub encoded 0 14 in
         (match Header.decode_prefix cut with
          | Some (h', len) ->
            check header_testable "header" h h';
            check Alcotest.int "len" 12 len
          | None -> Alcotest.fail "expected decode");
         (* cut inside the header: refused *)
         check Alcotest.bool "short" true
           (Header.decode_prefix (Bytes.sub encoded 0 10) = None));
    qtest
      (QCheck.Test.make ~name:"header roundtrip (random lists)" ~count:300
         QCheck.(pair (list_of_size Gen.(int_range 0 20) arb_addr)
                   (string_of_size Gen.(int_range 0 64)))
         (fun (sources, transport) ->
            let h =
              Header.make ~prev_sources:sources ~orig_proto:Ipv4.Proto.tcp
                ~mobile:(a 9) ()
            in
            let h', tr = Header.decode (Header.encode h (Bytes.of_string transport)) in
            Header.equal h h' && Bytes.to_string tr = transport));
    qtest
      (QCheck.Test.make ~name:"length = 8 + 4n" ~count:100
         QCheck.(list_of_size Gen.(int_range 0 30) arb_addr)
         (fun sources ->
            let h =
              Header.make ~prev_sources:sources ~orig_proto:Ipv4.Proto.udp
                ~mobile:(a 9) ()
            in
            Header.length h = 8 + (4 * List.length sources))) ]

(* --- Encap (Sections 4.1, 4.4, 5.3) --- *)

let encap_tests =
  [ Alcotest.test_case "sender-built tunnel adds exactly 8 bytes" `Quick
      (fun () ->
         let pkt = plain_packet () in
         let t = Encap.tunnel_by_sender ~foreign_agent:(Addr.host 4 1) pkt in
         check Alcotest.int "overhead" 8
           (Encap.added_bytes ~original:pkt ~tunneled:t);
         check addr_testable "src kept" pkt.Packet.src t.Packet.src;
         check addr_testable "dst is fa" (Addr.host 4 1) t.Packet.dst;
         check Alcotest.int "proto" Ipv4.Proto.mhrp t.Packet.proto;
         check Alcotest.int "id preserved" 77 t.Packet.id);
    Alcotest.test_case "agent-built tunnel adds exactly 12 bytes" `Quick
      (fun () ->
         let pkt = plain_packet () in
         let t =
           Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
             ~foreign_agent:(Addr.host 4 1) pkt
         in
         check Alcotest.int "overhead" 12
           (Encap.added_bytes ~original:pkt ~tunneled:t);
         check addr_testable "src is agent" (Addr.host 2 1) t.Packet.src;
         match Encap.header_of t with
         | Some h ->
           check (Alcotest.list addr_testable) "sender recorded"
             [pkt.Packet.src] h.Header.prev_sources
         | None -> Alcotest.fail "no header");
    Alcotest.test_case "detunnel restores the original packet" `Quick
      (fun () ->
         let pkt = plain_packet () in
         let t =
           Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
             ~foreign_agent:(Addr.host 4 1) pkt
         in
         match Encap.detunnel t with
         | Some (original, _) ->
           check addr_testable "src" pkt.Packet.src original.Packet.src;
           check addr_testable "dst" pkt.Packet.dst original.Packet.dst;
           check Alcotest.int "proto" pkt.Packet.proto original.Packet.proto;
           check Alcotest.string "payload"
             (Bytes.to_string pkt.Packet.payload)
             (Bytes.to_string original.Packet.payload)
         | None -> Alcotest.fail "detunnel failed");
    Alcotest.test_case "detunnel of sender-built keeps IP source" `Quick
      (fun () ->
         let pkt = plain_packet () in
         let t = Encap.tunnel_by_sender ~foreign_agent:(Addr.host 4 1) pkt in
         match Encap.detunnel t with
         | Some (original, _) ->
           check addr_testable "src" pkt.Packet.src original.Packet.src
         | None -> Alcotest.fail "detunnel failed");
    Alcotest.test_case "retunnel follows the Section 4.4 steps" `Quick
      (fun () ->
         let pkt = plain_packet () in
         let t =
           Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
             ~foreign_agent:(Addr.host 4 1) pkt
         in
         (* the stale FA 4.1 re-tunnels to the new FA 5.1 *)
         match
           Encap.retunnel ~max_prev_sources:8 ~me:(Addr.host 4 1)
             ~new_dst:(Addr.host 5 1) t
         with
         | Some (Encap.Retunneled p) ->
           check addr_testable "src me" (Addr.host 4 1) p.Packet.src;
           check addr_testable "dst new fa" (Addr.host 5 1) p.Packet.dst;
           check Alcotest.int "+4 bytes" 4
             (Packet.total_length p - Packet.total_length t);
           (match Encap.header_of p with
            | Some h ->
              check (Alcotest.list addr_testable) "list grew"
                [pkt.Packet.src; Addr.host 2 1] h.Header.prev_sources
            | None -> Alcotest.fail "no header")
         | _ -> Alcotest.fail "expected plain retunnel");
    Alcotest.test_case "retunnel overflow truncates and reports" `Quick
      (fun () ->
         let pkt = plain_packet () in
         let t =
           Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
             ~foreign_agent:(Addr.host 4 1) pkt
         in
         (* with max 1 the list [sender] is already full *)
         match
           Encap.retunnel ~max_prev_sources:1 ~me:(Addr.host 4 1)
             ~new_dst:(Addr.host 5 1) t
         with
         | Some (Encap.Retunneled_overflow { packet; notify }) ->
           check (Alcotest.list addr_testable) "notify stale"
             [pkt.Packet.src] notify;
           (match Encap.header_of packet with
            | Some h ->
              check (Alcotest.list addr_testable) "reset to incoming head"
                [Addr.host 2 1] h.Header.prev_sources
            | None -> Alcotest.fail "no header")
         | _ -> Alcotest.fail "expected overflow");
    Alcotest.test_case "loop detected when own address in list" `Quick
      (fun () ->
         let pkt = plain_packet () in
         let t =
           Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
             ~foreign_agent:(Addr.host 4 1) pkt
         in
         (* 4.1 -> 5.1 -> back at 4.1 *)
         let t2 =
           match
             Encap.retunnel ~max_prev_sources:8 ~me:(Addr.host 4 1)
               ~new_dst:(Addr.host 5 1) t
           with
           | Some (Encap.Retunneled p) -> p
           | _ -> Alcotest.fail "setup"
         in
         let t3 =
           match
             Encap.retunnel ~max_prev_sources:8 ~me:(Addr.host 5 1)
               ~new_dst:(Addr.host 4 1) t2
           with
           | Some (Encap.Retunneled p) -> p
           | _ -> Alcotest.fail "setup2"
         in
         match
           Encap.retunnel ~max_prev_sources:8 ~me:(Addr.host 4 1)
             ~new_dst:(Addr.host 5 1) t3
         with
         | Some (Encap.Loop_detected { members }) ->
           check Alcotest.bool "old fa in loop" true
             (List.exists (Addr.equal (Addr.host 5 1)) members)
         | _ -> Alcotest.fail "expected loop detection");
    Alcotest.test_case "retunnel refuses non-mhrp packets" `Quick
      (fun () ->
         check Alcotest.bool "none" true
           (Encap.retunnel ~max_prev_sources:8 ~me:(a 1)
              ~new_dst:(a 2) (plain_packet ())
            = None));
    qtest
      (QCheck.Test.make ~name:"tunnel/detunnel identity (random packets)"
         ~count:300
         QCheck.(triple arb_addr arb_addr
                   (string_of_size Gen.(int_range 0 100)))
         (fun (src, dst, payload) ->
            QCheck.assume (not (Addr.equal src dst));
            let pkt =
              Packet.make ~proto:Ipv4.Proto.udp ~src ~dst
                (Bytes.of_string payload)
            in
            let t =
              Encap.tunnel_by_agent ~agent:(Addr.host 200 1)
                ~foreign_agent:(Addr.host 201 1) pkt
            in
            match Encap.detunnel t with
            | Some (original, _) ->
              Addr.equal original.Packet.src src
              && Addr.equal original.Packet.dst dst
              && Bytes.to_string original.Packet.payload = payload
            | None -> false)) ]

(* --- Location cache --- *)

let cache_tests =
  [ Alcotest.test_case "insert, find, delete" `Quick (fun () ->
        let c = Mhrp.Location_cache.create ~capacity:4 in
        Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 2);
        check (Alcotest.option addr_testable) "hit" (Some (a 2))
          (Mhrp.Location_cache.find c (a 1));
        Mhrp.Location_cache.delete c (a 1);
        check (Alcotest.option addr_testable) "gone" None
          (Mhrp.Location_cache.find c (a 1));
        check Alcotest.int "hit count" 1 (Mhrp.Location_cache.hits c);
        check Alcotest.int "miss count" 1 (Mhrp.Location_cache.misses c));
    Alcotest.test_case "LRU eviction at capacity" `Quick (fun () ->
        let c = Mhrp.Location_cache.create ~capacity:2 in
        Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 10);
        Mhrp.Location_cache.insert c ~mobile:(a 2) ~foreign_agent:(a 20);
        (* touch a1 so a2 is LRU *)
        ignore (Mhrp.Location_cache.find c (a 1));
        Mhrp.Location_cache.insert c ~mobile:(a 3) ~foreign_agent:(a 30);
        check (Alcotest.option addr_testable) "lru evicted" None
          (Mhrp.Location_cache.peek c (a 2));
        check (Alcotest.option addr_testable) "recent kept" (Some (a 10))
          (Mhrp.Location_cache.peek c (a 1));
        check Alcotest.int "evictions" 1
          (Mhrp.Location_cache.evictions c));
    Alcotest.test_case "update with zero deletes (at-home signal)" `Quick
      (fun () ->
         let c = Mhrp.Location_cache.create ~capacity:4 in
         Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 2);
         Mhrp.Location_cache.update c ~mobile:(a 1)
           ~foreign_agent:Addr.zero;
         check Alcotest.int "empty" 0 (Mhrp.Location_cache.size c));
    Alcotest.test_case "zero insert rejected" `Quick (fun () ->
        let c = Mhrp.Location_cache.create ~capacity:4 in
        Alcotest.check_raises "zero"
          (Invalid_argument
             "Location_cache.insert: zero foreign agent (use delete)")
          (fun () ->
             Mhrp.Location_cache.insert c ~mobile:(a 1)
               ~foreign_agent:Addr.zero));
    Alcotest.test_case "reinsert updates without eviction" `Quick
      (fun () ->
         let c = Mhrp.Location_cache.create ~capacity:2 in
         Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 10);
         Mhrp.Location_cache.insert c ~mobile:(a 2) ~foreign_agent:(a 20);
         Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 11);
         check Alcotest.int "no eviction" 0
           (Mhrp.Location_cache.evictions c);
         check (Alcotest.option addr_testable) "updated" (Some (a 11))
           (Mhrp.Location_cache.peek c (a 1)));
    Alcotest.test_case "capacity 1: overwrite is not an eviction" `Quick
      (fun () ->
         let c = Mhrp.Location_cache.create ~capacity:1 in
         Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 10);
         Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 11);
         check Alcotest.int "same key overwritten in place" 0
           (Mhrp.Location_cache.evictions c);
         check (Alcotest.option addr_testable) "newest mapping" (Some (a 11))
           (Mhrp.Location_cache.peek c (a 1));
         Mhrp.Location_cache.insert c ~mobile:(a 2) ~foreign_agent:(a 20);
         check Alcotest.int "new key evicts the only entry" 1
           (Mhrp.Location_cache.evictions c);
         check (Alcotest.option addr_testable) "old key gone" None
           (Mhrp.Location_cache.peek c (a 1));
         check Alcotest.int "still one entry" 1 (Mhrp.Location_cache.size c));
    Alcotest.test_case "entries are ordered most recently used first" `Quick
      (fun () ->
         let c = Mhrp.Location_cache.create ~capacity:4 in
         Mhrp.Location_cache.insert c ~mobile:(a 1) ~foreign_agent:(a 10);
         Mhrp.Location_cache.insert c ~mobile:(a 2) ~foreign_agent:(a 20);
         Mhrp.Location_cache.insert c ~mobile:(a 3) ~foreign_agent:(a 30);
         check (Alcotest.list (Alcotest.pair addr_testable addr_testable))
           "insertion order, newest first"
           [(a 3, a 30); (a 2, a 20); (a 1, a 10)]
           (Mhrp.Location_cache.entries c);
         (* a find refreshes recency; a peek must not *)
         ignore (Mhrp.Location_cache.find c (a 1));
         ignore (Mhrp.Location_cache.peek c (a 2));
         check (Alcotest.list (Alcotest.pair addr_testable addr_testable))
           "find moves to front, peek does not"
           [(a 1, a 10); (a 3, a 30); (a 2, a 20)]
           (Mhrp.Location_cache.entries c);
         (* re-insert of a warm key must not evict the colder ones *)
         Mhrp.Location_cache.insert c ~mobile:(a 3) ~foreign_agent:(a 31);
         check (Alcotest.list (Alcotest.pair addr_testable addr_testable))
           "re-insert refreshes, everything retained"
           [(a 3, a 31); (a 1, a 10); (a 2, a 20)]
           (Mhrp.Location_cache.entries c));
    qtest
      (QCheck.Test.make ~name:"size never exceeds capacity" ~count:100
         QCheck.(list_of_size Gen.(int_range 0 100) (pair arb_addr arb_addr))
         (fun ops ->
            let c = Mhrp.Location_cache.create ~capacity:8 in
            List.iter
              (fun (m, f) ->
                 if not (Addr.is_zero f) then
                   Mhrp.Location_cache.insert c ~mobile:m ~foreign_agent:f)
              ops;
            Mhrp.Location_cache.size c <= 8)) ]

(* --- Rate limiter (Section 4.3) --- *)

let rate_tests =
  [ Alcotest.test_case "suppresses within min interval" `Quick (fun () ->
        let r =
          Mhrp.Rate_limiter.create ~capacity:8
            ~min_interval:(Netsim.Time.of_sec 1.0)
        in
        let t0 = Netsim.Time.zero in
        check Alcotest.bool "first" true (Mhrp.Rate_limiter.allow r ~now:t0 (a 1));
        check Alcotest.bool "suppressed" false
          (Mhrp.Rate_limiter.allow r ~now:(Netsim.Time.of_ms 500) (a 1));
        check Alcotest.bool "other addr ok" true
          (Mhrp.Rate_limiter.allow r ~now:(Netsim.Time.of_ms 500) (a 2));
        check Alcotest.bool "after interval" true
          (Mhrp.Rate_limiter.allow r ~now:(Netsim.Time.of_ms 1500) (a 1));
        check Alcotest.int "counts" 1 (Mhrp.Rate_limiter.suppressed r));
    Alcotest.test_case "LRU list bounded; aged-out addresses may send"
      `Quick (fun () ->
          let r =
            Mhrp.Rate_limiter.create ~capacity:2
              ~min_interval:(Netsim.Time.of_sec 10.0)
          in
          let now = Netsim.Time.of_sec 1.0 in
          ignore (Mhrp.Rate_limiter.allow r ~now (a 1));
          ignore (Mhrp.Rate_limiter.allow r ~now (a 2));
          ignore (Mhrp.Rate_limiter.allow r ~now (a 3));
          (* a1 aged out of the bounded list: allowed again (errs toward
             sending, as the paper's LRU list does) *)
          check Alcotest.int "bounded" 2 (Mhrp.Rate_limiter.size r);
          check Alcotest.bool "aged out" true
            (Mhrp.Rate_limiter.allow r ~now:(Netsim.Time.of_sec 2.0) (a 1)));
    Alcotest.test_case "eviction removes the oldest sender, not a refreshed one"
      `Quick (fun () ->
          let sec = Netsim.Time.of_sec in
          let r =
            Mhrp.Rate_limiter.create ~capacity:2
              ~min_interval:(Netsim.Time.of_sec 10.0)
          in
          ignore (Mhrp.Rate_limiter.allow r ~now:(sec 1.0) (a 1));
          ignore (Mhrp.Rate_limiter.allow r ~now:(sec 2.0) (a 2));
          (* refresh a1 after its quiet period: a2 is now the oldest *)
          check Alcotest.bool "a1 refreshed" true
            (Mhrp.Rate_limiter.allow r ~now:(sec 11.5) (a 1));
          ignore (Mhrp.Rate_limiter.allow r ~now:(sec 12.0) (a 3));
          (* a3's insert at capacity must evict a2 (oldest), keeping the
             refreshed a1 in its quiet period *)
          check Alcotest.bool "a1 still limited" false
            (Mhrp.Rate_limiter.allow r ~now:(sec 12.5) (a 1));
          check Alcotest.bool "a2 was the victim" true
            (Mhrp.Rate_limiter.allow r ~now:(sec 12.5) (a 2)));
    Alcotest.test_case "aged entries are purged, size counts active senders"
      `Quick (fun () ->
          let sec = Netsim.Time.of_sec in
          let r =
            Mhrp.Rate_limiter.create ~capacity:8
              ~min_interval:(Netsim.Time.of_sec 1.0)
          in
          for k = 1 to 5 do
            ignore (Mhrp.Rate_limiter.allow r ~now:(sec 1.0) (a k))
          done;
          check Alcotest.int "all active" 5 (Mhrp.Rate_limiter.size r);
          (* one send after the quiet period lapses drops the stale bulk *)
          ignore (Mhrp.Rate_limiter.allow r ~now:(sec 3.0) (a 6));
          check Alcotest.int "stale senders purged" 1
            (Mhrp.Rate_limiter.size r)) ]

(* --- Control codec --- *)

let control_roundtrip m =
  match Mhrp.Control.decode (Mhrp.Control.encode m) with
  | Some m' -> Mhrp.Control.encode m = Mhrp.Control.encode m'
  | None -> false

let control_tests =
  [ Alcotest.test_case "all message kinds roundtrip" `Quick (fun () ->
        let mac = Net.Mac.of_int 0x0200_0000_0001 in
        List.iter
          (fun m -> check Alcotest.bool "roundtrip" true (control_roundtrip m))
          [ Mhrp.Control.Reg_request { mobile = a 1; foreign_agent = a 2 };
            Mhrp.Control.Reg_reply { mobile = a 1; accepted = true };
            Mhrp.Control.Reg_reply { mobile = a 1; accepted = false };
            Mhrp.Control.Fa_connect { mobile = a 1; mac };
            Mhrp.Control.Fa_connect_ack { mobile = a 1 };
            Mhrp.Control.Fa_disconnect
              { mobile = a 1; new_foreign_agent = a 3 } ]);
    Alcotest.test_case "garbage rejected" `Quick (fun () ->
        check Alcotest.bool "none" true
          (Mhrp.Control.decode (Bytes.of_string "zz") = None);
        check Alcotest.bool "unknown tag" true
          (Mhrp.Control.decode (Bytes.make 12 '\xFE') = None)) ]

(* --- Home/foreign agent state --- *)

let ha_state_tests =
  [ Alcotest.test_case "registration lifecycle" `Quick (fun () ->
        let ha = Mhrp.Home_agent.create () in
        Mhrp.Home_agent.add_mobile ha (a 1);
        check Alcotest.bool "serves" true (Mhrp.Home_agent.serves ha (a 1));
        check Alcotest.bool "at home" false (Mhrp.Home_agent.is_away ha (a 1));
        Mhrp.Home_agent.register ha ~mobile:(a 1) ~foreign_agent:(a 9);
        check Alcotest.bool "away" true (Mhrp.Home_agent.is_away ha (a 1));
        check (Alcotest.list addr_testable) "away list" [a 1]
          (Mhrp.Home_agent.away_mobiles ha);
        Mhrp.Home_agent.register ha ~mobile:(a 1) ~foreign_agent:Addr.zero;
        check Alcotest.bool "home again" false
          (Mhrp.Home_agent.is_away ha (a 1)));
    Alcotest.test_case "unknown mobile rejected" `Quick (fun () ->
        let ha = Mhrp.Home_agent.create () in
        Alcotest.check_raises "not mine"
          (Invalid_argument "Home_agent.register: not my mobile host")
          (fun () ->
             Mhrp.Home_agent.register ha ~mobile:(a 1)
               ~foreign_agent:(a 2)));
    Alcotest.test_case "persistence across reboot" `Quick (fun () ->
        let ha = Mhrp.Home_agent.create ~persistent:true () in
        Mhrp.Home_agent.add_mobile ha (a 1);
        Mhrp.Home_agent.register ha ~mobile:(a 1) ~foreign_agent:(a 9);
        Mhrp.Home_agent.reboot ha;
        check Alcotest.bool "survives" true (Mhrp.Home_agent.is_away ha (a 1));
        let volatile = Mhrp.Home_agent.create ~persistent:false () in
        Mhrp.Home_agent.add_mobile volatile (a 1);
        Mhrp.Home_agent.reboot volatile;
        check Alcotest.bool "cleared" false
          (Mhrp.Home_agent.serves volatile (a 1)));
    Alcotest.test_case "state is 8 bytes per mobile" `Quick (fun () ->
        let ha = Mhrp.Home_agent.create () in
        for i = 1 to 5 do
          Mhrp.Home_agent.add_mobile ha (a i)
        done;
        check Alcotest.int "bytes" 40 (Mhrp.Home_agent.state_bytes ha)) ]

let fa_state_tests =
  [ Alcotest.test_case "visitor list lifecycle" `Quick (fun () ->
        let fa = Mhrp.Foreign_agent.create () in
        Mhrp.Foreign_agent.add fa
          { Mhrp.Foreign_agent.mobile = a 1; mac = None; iface = 0 };
        check Alcotest.bool "mem" true (Mhrp.Foreign_agent.mem fa (a 1));
        check Alcotest.int "count" 1 (Mhrp.Foreign_agent.count fa);
        Mhrp.Foreign_agent.remove fa (a 1);
        check Alcotest.bool "removed" false (Mhrp.Foreign_agent.mem fa (a 1)));
    Alcotest.test_case "clear empties (the reboot behaviour)" `Quick
      (fun () ->
         let fa = Mhrp.Foreign_agent.create () in
         for i = 1 to 4 do
           Mhrp.Foreign_agent.add fa
             { Mhrp.Foreign_agent.mobile = a i; mac = None; iface = 0 }
         done;
         Mhrp.Foreign_agent.clear fa;
         check Alcotest.int "empty" 0 (Mhrp.Foreign_agent.count fa)) ]

let suite =
  [ ("mhrp-header", header_tests); ("encap", encap_tests);
    ("location-cache", cache_tests); ("rate-limiter", rate_tests);
    ("control", control_tests); ("home-agent-state", ha_state_tests);
    ("foreign-agent-state", fa_state_tests) ]
