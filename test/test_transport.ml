(* Tests for the connection-oriented transport: the socket state machine
   (handshake, sliding window, RTO recovery, teardown), the datagram
   endpoint, and the segment codec's totality — including the headline
   property that a stream delivers exactly its bytes, in order, without
   duplicates, under seeded link loss. *)

module Time = Netsim.Time
module Engine = Netsim.Engine
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen
module Stack = Transport.Stack
module Socket = Transport.Socket
module Tcp = Ipv4.Tcp_lite

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let setup () =
  let f = TG.figure1 () in
  Netsim.Trace.set_enabled (Topology.trace f.TG.topo) false;
  f

let at topo sec f =
  ignore (Engine.schedule (Topology.engine topo) ~at:(Time.of_sec sec) f)

(* --- socket basics --- *)

let socket_tests =
  [ Alcotest.test_case "handshake, echo stream, orderly close" `Quick
      (fun () ->
         let f = setup () in
         let server = Stack.create f.TG.m in
         let client = Stack.create f.TG.s in
         (* server echoes everything back *)
         ignore
           (Socket.listen server ~port:7 (fun sock ->
                Socket.recv_cb sock (fun b -> Socket.send sock b);
                Socket.on_peer_close sock (fun () -> Socket.close sock)));
         let echoed = Buffer.create 64 in
         let established = ref false in
         let closed = ref false in
         at f.TG.topo 1.0 (fun () ->
             let sock =
               Socket.connect client ~dst:(Agent.address f.TG.m) ~dst_port:7
                 ()
             in
             Socket.on_established sock (fun () -> established := true);
             Socket.recv_cb sock (fun b -> Buffer.add_bytes echoed b);
             Socket.on_closed sock (fun () -> closed := true);
             Socket.send sock (Bytes.of_string "hello through MHRP");
             Socket.on_drained sock (fun () -> Socket.close sock));
         Topology.run ~until:(Time.of_sec 10.0) f.TG.topo;
         check Alcotest.bool "established" true !established;
         check Alcotest.string "echo" "hello through MHRP"
           (Buffer.contents echoed);
         check Alcotest.bool "closed" true !closed;
         let c = Stack.counters client in
         check Alcotest.int "no retransmissions at home" 0
           c.Transport.Counters.retransmissions;
         check Alcotest.int "client opened one" 1
           c.Transport.Counters.conns_opened;
         check Alcotest.int "client orderly close" 1
           c.Transport.Counters.conns_closed;
         check Alcotest.int "server accepted one" 1
           (Stack.counters server).Transport.Counters.conns_accepted);
    Alcotest.test_case "connect to a dead port is reset" `Quick (fun () ->
        let f = setup () in
        (* the server stack listens on 7 only; 9 has nobody *)
        let server = Stack.create f.TG.m in
        ignore (Socket.listen server ~port:7 (fun _ -> ()));
        let client = Stack.create f.TG.s in
        let error = ref "" in
        at f.TG.topo 1.0 (fun () ->
            let sock =
              Socket.connect client ~dst:(Agent.address f.TG.m) ~dst_port:9 ()
            in
            Socket.on_error sock (fun e -> error := e));
        Topology.run ~until:(Time.of_sec 5.0) f.TG.topo;
        check Alcotest.string "refused" "connection reset by peer" !error;
        check Alcotest.int "one failed conn" 1
          (Stack.counters client).Transport.Counters.conns_failed;
        check Alcotest.int "server sent a reset" 1
          (Stack.counters server).Transport.Counters.resets_sent);
    Alcotest.test_case "stream survives a hand-off mid-window" `Quick
      (fun () ->
         let f = setup () in
         let server = Stack.create f.TG.m in
         let received = Buffer.create 4096 in
         ignore
           (Socket.listen server ~port:7 (fun sock ->
                Socket.recv_cb sock (fun b -> Buffer.add_bytes received b)));
         let client = Stack.create f.TG.s in
         let data = Bytes.init 100_000 (fun i -> Char.chr (i land 0xFF)) in
         at f.TG.topo 0.5 (fun () ->
             let sock =
               Socket.connect client ~window:1024
                 ~dst:(Agent.address f.TG.m) ~dst_port:7 ()
             in
             Socket.send sock data);
         (* move while the window is in flight *)
         Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 0.6)
           f.TG.net_d;
         Topology.run ~until:(Time.of_sec 30.0) f.TG.topo;
         check Alcotest.int "all bytes" 100_000 (Buffer.length received);
         check Alcotest.bool "intact" true
           (Bytes.equal data (Buffer.to_bytes received));
         check Alcotest.bool "hand-off cost retransmissions" true
           ((Stack.counters client).Transport.Counters.retransmissions > 0));
    Alcotest.test_case "datagram endpoint roundtrip" `Quick (fun () ->
        let f = setup () in
        let sender = Stack.create f.TG.s in
        let receiver = Stack.create f.TG.m in
        let got = ref [] in
        let d_in = Socket.Dgram.create receiver ~port:4000 in
        Socket.Dgram.on_recv d_in (fun ~src:_ ~src_port b ->
            got := (src_port, Bytes.to_string b) :: !got);
        let d_out = Socket.Dgram.create sender ~port:4099 in
        at f.TG.topo 1.0 (fun () ->
            Socket.Dgram.sendto d_out ~dst:(Agent.address f.TG.m)
              ~dst_port:4000 (Bytes.of_string "dgram"));
        Topology.run ~until:(Time.of_sec 3.0) f.TG.topo;
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
          "delivered once" [ (4099, "dgram") ] !got) ]

(* --- codec properties --- *)

let arb_flags =
  QCheck.(
    list_of_size Gen.(0 -- 6)
      (oneofl Tcp.[ Fin; Syn; Rst; Psh; Ack; Urg ]))

let canonical flags =
  List.filter (fun f -> List.mem f flags) Tcp.[ Fin; Syn; Rst; Psh; Ack; Urg ]

let codec_tests =
  [ qtest
      (QCheck.Test.make ~name:"tcp roundtrip incl. flag-set ordering"
         ~count:300
         QCheck.(
           pair
             (pair (pair (int_bound 0xFFFF) (int_bound 0xFFFF))
                (pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF)))
             (pair arb_flags (string_of_size Gen.(0 -- 64))))
         (fun (((sp, dp), (seq, ack)), (flags, data)) ->
           let seg =
             Tcp.make ~seq ~ack ~flags ~src_port:sp ~dst_port:dp
               (Bytes.of_string data)
           in
           let d = Tcp.decode_exn (Tcp.encode seg) in
           d.Tcp.src_port = sp && d.Tcp.dst_port = dp && d.Tcp.seq = seq
           && d.Tcp.ack = ack
           && d.Tcp.flags = canonical flags
           && Bytes.to_string d.Tcp.data = data));
    qtest
      (QCheck.Test.make ~name:"flag order does not change the wire bytes"
         ~count:100 arb_flags (fun flags ->
           let mk fl =
             Tcp.encode (Tcp.make ~flags:fl ~src_port:1 ~dst_port:2
                           (Bytes.of_string "x"))
           in
           Bytes.equal (mk flags) (mk (List.rev flags))));
    qtest
      (QCheck.Test.make ~name:"decode is total over hostile bytes"
         ~count:500
         QCheck.(string_of_size Gen.(0 -- 64))
         (fun junk ->
           match Tcp.decode (Bytes.of_string junk) with
           | Some _ | None -> true));
    qtest
      (QCheck.Test.make ~name:"decode rejects any single flipped bit"
         ~count:100
         QCheck.(pair (int_bound 239) (int_bound 7))
         (fun (byte, bit) ->
           let seg =
             Tcp.make ~seq:7 ~ack:9 ~flags:[ Tcp.Psh; Tcp.Ack ] ~src_port:80
               ~dst_port:5001 (Bytes.make 220 'q')
           in
           let wire = Tcp.encode seg in
           Bytes.set wire byte
             (Char.chr (Char.code (Bytes.get wire byte) lxor (1 lsl bit)));
           Tcp.decode wire = None)) ]

(* --- the sliding-window property under seeded loss --- *)

let run_lossy_transfer ~bytes ~window ~flaps =
  let f = setup () in
  let topo = f.TG.topo in
  let server = Stack.create f.TG.m in
  let received = Buffer.create bytes in
  ignore
    (Socket.listen server ~port:4321 ~max_retries:1000 (fun sock ->
         Socket.recv_cb sock (fun b -> Buffer.add_bytes received b)));
  let client = Stack.create f.TG.s in
  let data = Bytes.init bytes (fun i -> Char.chr (i * 7 land 0xFF)) in
  at topo 0.2 (fun () ->
      let sock =
        Socket.connect client ~window:(window * 512) ~max_retries:1000
          ~dst:(Agent.address f.TG.m) ~dst_port:4321 ()
      in
      Socket.send sock data);
  if flaps <> [] then begin
    let inj = Fault.Injector.create ~seed:77 topo in
    Fault.Injector.inject inj
      (List.map
         (fun (at_s, dur_s) ->
           Fault.Schedule.Lan_down
             { lan = "netB"; at = Time.of_sec at_s;
               duration = Time.of_sec dur_s })
         flaps)
  end;
  Topology.run ~until:(Time.of_sec 90.0) topo;
  Buffer.length received = bytes
  && Bytes.equal data (Buffer.to_bytes received)

let window_tests =
  [ qtest
      (QCheck.Test.make
         ~name:
           "delivered = sent, in order, no duplicates, under link loss"
         ~count:8
         QCheck.(
           pair
             (pair (int_range 1 20000) (int_range 1 16))
             (list_of_size Gen.(0 -- 3)
                (pair (int_range 0 40) (int_range 1 20))))
         (fun ((bytes, window), raw_flaps) ->
           (* flaps land in [0.3s, 4.3s) with durations up to 2s, on the
              receiver's home LAN — every segment crossing it dies *)
           let flaps =
             List.mapi
               (fun i (at_ds, dur_ds) ->
                 ( 0.3 +. (float_of_int i *. 4.0)
                   +. (float_of_int at_ds /. 10.),
                   float_of_int dur_ds /. 10. ))
               raw_flaps
           in
           run_lossy_transfer ~bytes ~window ~flaps)) ]

let suite =
  [ ("transport.socket", socket_tests);
    ("transport.codec", codec_tests);
    ("transport.window", window_tests) ]
