(* Additional behavioural coverage: rerouting after link failure, periodic
   agent advertisements when solicitation finds nobody, the Sony VIP
   always-pay contrast with MHRP's at-home free ride, and the explicit
   disconnect-then-reconnect life cycle. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Lan = Net.Lan
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check

let misc_tests =
  [ Alcotest.test_case
      "link failure + route recomputation restores delivery" `Quick
      (fun () ->
         (* a ring: two disjoint paths between the endpoints *)
         let topo = Topology.create () in
         let l_a = Topology.add_lan topo ~net:1 "lanA" in
         let l_b = Topology.add_lan topo ~net:2 "lanB" in
         let top = Topology.add_lan topo ~net:10 "top" in
         let bottom = Topology.add_lan topo ~net:11 "bottom" in
         let _r1 = Topology.add_router topo "r1" [(l_a, 1); (top, 1)] in
         let _r2 = Topology.add_router topo "r2" [(top, 2); (l_b, 1)] in
         let _r3 = Topology.add_router topo "r3" [(l_a, 2); (bottom, 1)] in
         let _r4 = Topology.add_router topo "r4" [(bottom, 2); (l_b, 2)] in
         let a = Topology.add_host topo "a" l_a 10 in
         let b = Topology.add_host topo "b" l_b 10 in
         Topology.compute_routes topo;
         let got = ref 0 in
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> incr got);
         let send () =
           Node.send a
             (Ipv4.Packet.make ~proto:Ipv4.Proto.udp
                ~src:(Node.primary_addr a) ~dst:(Node.primary_addr b)
                (Ipv4.Udp.encode
                   (Ipv4.Udp.make ~src_port:1 ~dst_port:2 Bytes.empty)))
         in
         send ();
         Topology.run topo;
         check Alcotest.int "initial path works" 1 !got;
         (* the path in use dies; the routing protocol reconverges *)
         Lan.set_up top false;
         Topology.compute_routes topo;
         send ();
         Topology.run topo;
         check Alcotest.int "rerouted over the other path" 2 !got);
    Alcotest.test_case
      "mobile host registers from a periodic advertisement when its \
       solicitation found nobody"
      `Quick (fun () ->
          let f = TG.figure1 () in
          let topo = f.TG.topo in
          (* a cell with a router but no foreign agent yet *)
          let net_e = Topology.add_lan topo ~net:5 "netE" in
          let r5n =
            Topology.add_router topo "R5" [(f.TG.net_c, 3); (net_e, 1)]
          in
          Topology.compute_routes topo;
          let r5 = Agent.create r5n in
          Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0) net_e;
          (* the foreign agent comes up only after the move: its next
             periodic advertisement (10 s period) rescues the stranded
             host *)
          ignore
            (Netsim.Engine.schedule (Topology.engine topo)
               ~at:(Time.of_sec 2.0) (fun () ->
                   Agent.enable_foreign_agent r5
                     ~iface:(Option.get
                               (Node.iface_to r5n (Net.Lan.prefix net_e)))));
          Topology.run ~until:(Time.of_sec 6.0) topo;
          (match Agent.mobile f.TG.m with
           | Some mh ->
             check Alcotest.bool "still searching before the advert" true
               (mh.Mhrp.Mobile_host.phase = Mhrp.Mobile_host.Searching)
           | None -> Alcotest.fail "no mobile");
          Topology.run ~until:(Time.of_sec 15.0) topo;
          match Agent.mobile f.TG.m with
          | Some mh ->
            check Alcotest.bool "registered off the periodic advert" true
              (match mh.Mhrp.Mobile_host.phase with
               | Mhrp.Mobile_host.Registered _ -> true
               | _ -> false)
          | None -> Alcotest.fail "no mobile");
    Alcotest.test_case
      "Sony VIP pays 28 bytes even between stationary hosts; MHRP pays 0"
      `Quick (fun () ->
          (* the E9 contrast: the same stationary-to-stationary exchange
             under both protocols *)
          let p = TG.figure1_plain () in
          let sv = Baselines.Sony_vip.create p.TG.p_topo in
          List.iter (Baselines.Sony_vip.add_router sv)
            [p.TG.p_r1; p.TG.p_r2];
          Baselines.Sony_vip.make_host sv p.TG.p_s ~home_router:p.TG.p_r1;
          Baselines.Sony_vip.make_host sv p.TG.p_m ~home_router:p.TG.p_r2;
          let vip_bytes = ref 0 in
          Baselines.Sony_vip.on_receive sv p.TG.p_m (fun _ -> ());
          Node.on_transmit p.TG.p_s (fun _ pkt ->
              vip_bytes := Ipv4.Packet.total_length pkt);
          Baselines.Sony_vip.send sv ~src:p.TG.p_s
            (Ipv4.Packet.make ~id:1 ~proto:Ipv4.Proto.udp
               ~src:(Node.primary_addr p.TG.p_s)
               ~dst:(Node.primary_addr p.TG.p_m)
               (Ipv4.Udp.encode
                  (Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.create 64))));
          Topology.run ~until:(Time.of_sec 1.0) p.TG.p_topo;
          check Alcotest.int "VIP wire size" (92 + 28) !vip_bytes;
          (* MHRP: same exchange, mobile-capable but at home *)
          let f = TG.figure1 () in
          let mhrp_bytes = ref 0 in
          Node.on_transmit (Agent.node f.TG.s) (fun _ pkt ->
              mhrp_bytes := Ipv4.Packet.total_length pkt);
          Agent.send_udp f.TG.s ~id:1 ~dst:(Agent.address f.TG.m)
            (Bytes.create 64);
          Topology.run ~until:(Time.of_sec 1.0) f.TG.topo;
          check Alcotest.int "MHRP wire size" 92 !mhrp_bytes);
    Alcotest.test_case
      "silent link-level move is noticed via advert expiry (Section 3)"
      `Quick (fun () ->
          (* short advertisement cadence so the test runs quickly *)
          let config =
            Mhrp.Config.make ~advert_interval:(Time.of_sec 1.0)
              ~advert_lifetime:(Time.of_sec 3.0) ()
          in
          let f = TG.figure1 ~config () in
          let topo = f.TG.topo in
          let metrics = Workload.Metrics.create topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine topo)
          in
          Workload.Metrics.watch_receiver metrics f.TG.m;
          let m_addr = Agent.address f.TG.m in
          (* the host is carried away WITHOUT any protocol call: only the
             link layer changes *)
          ignore
            (Netsim.Engine.schedule (Topology.engine topo)
               ~at:(Time.of_sec 1.0) (fun () ->
                   Topology.move_host topo (Agent.node f.TG.m)
                     f.TG.net_d));
          (* after the advertisement lifetime lapses the host searches,
             hears R4, and registers by itself *)
          Workload.Traffic.at traffic (Time.of_sec 8.0) (fun () ->
              Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ());
          Topology.run ~until:(Time.of_sec 12.0) topo;
          (match Agent.mobile f.TG.m with
           | Some mh ->
             check Alcotest.bool "implicitly disconnected" true
               (mh.Mhrp.Mobile_host.implicit_disconnects >= 1);
             check Alcotest.bool "re-registered by itself" true
               (match mh.Mhrp.Mobile_host.phase with
                | Mhrp.Mobile_host.Registered _ -> true
                | _ -> false)
           | None -> Alcotest.fail "no mobile");
          check Alcotest.bool "traffic flows again" true
            (List.exists
               (fun r -> r.Workload.Metrics.delivered_at <> None)
               (Workload.Metrics.records metrics)));
    Alcotest.test_case "disconnect then reconnect restores service" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let topo = f.TG.topo in
         let metrics = Workload.Metrics.create topo in
         let traffic =
           Workload.Traffic.create metrics (Topology.engine topo)
         in
         Workload.Metrics.watch_receiver metrics f.TG.m;
         let m_addr = Agent.address f.TG.m in
         Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0)
           f.TG.net_d;
         Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
             Agent.disconnect f.TG.m);
         Workload.Traffic.at traffic (Time.of_sec 3.0) (fun () ->
             Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ());
         (* reconnect at the same cell *)
         Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 4.0)
           f.TG.net_d;
         Workload.Traffic.at traffic (Time.of_sec 5.0) (fun () ->
             Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ());
         Topology.run ~until:(Time.of_sec 8.0) topo;
         let rs = Workload.Metrics.records metrics in
         check Alcotest.bool "lost while disconnected" true
           ((List.nth rs 0).Workload.Metrics.delivered_at = None);
         check Alcotest.bool "delivered after reconnect" true
           ((List.nth rs 1).Workload.Metrics.delivered_at <> None)) ]

let suite = [ ("misc-behaviour", misc_tests) ]
