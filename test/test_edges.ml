(* Edge cases and small-API coverage that the larger suites do not touch:
   builder validation, printer formats, counters, the commuter model and
   the reliable transfer's argument checking. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check

let edge_tests =
  [ Alcotest.test_case "duplicate names rejected by the builder" `Quick
      (fun () ->
         let topo = Topology.create () in
         let lan = Topology.add_lan topo ~net:1 "lan" in
         ignore (Topology.add_host topo "x" lan 1);
         check Alcotest.bool "node" true
           (try
              ignore (Topology.add_host topo "x" lan 2);
              false
            with Invalid_argument _ -> true);
         check Alcotest.bool "lan" true
           (try
              ignore (Topology.add_lan topo ~net:2 "lan");
              false
            with Invalid_argument _ -> true));
    Alcotest.test_case "proto names" `Quick (fun () ->
        check Alcotest.string "udp" "udp" (Ipv4.Proto.name Ipv4.Proto.udp);
        check Alcotest.string "mhrp" "mhrp"
          (Ipv4.Proto.name Ipv4.Proto.mhrp);
        check Alcotest.string "unknown" "proto-200" (Ipv4.Proto.name 200));
    Alcotest.test_case "prefix parser rejects garbage" `Quick (fun () ->
        List.iter
          (fun s ->
             check Alcotest.bool s true
               (try
                  ignore (Addr.Prefix.of_string s);
                  false
                with Invalid_argument _ -> true))
          ["10.0.0.0"; "10.0.0.0/33"; "10.0.0.0/x"; "zz/8"]);
    Alcotest.test_case "node counters track the four packet fates" `Quick
      (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l2 = Topology.add_lan topo ~net:2 "l2" in
         let r = Topology.add_router topo "r" [(l1, 1); (l2, 1)] in
         let a = Topology.add_host topo "a" l1 10 in
         let b = Topology.add_host topo "b" l2 10 in
         Topology.compute_routes topo;
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> ());
         Node.send a
           (Ipv4.Packet.make ~proto:Ipv4.Proto.udp
              ~src:(Node.primary_addr a) ~dst:(Node.primary_addr b)
              (Ipv4.Udp.encode
                 (Ipv4.Udp.make ~src_port:1 ~dst_port:2 Bytes.empty)));
         Topology.run topo;
         check Alcotest.int "a originated" 1 (Node.packets_originated a);
         check Alcotest.int "r forwarded" 1 (Node.packets_forwarded r);
         check Alcotest.int "b delivered" 1 (Node.packets_delivered b);
         check Alcotest.int "nothing dropped" 0
           (Node.packets_dropped a + Node.packets_dropped r
            + Node.packets_dropped b));
    Alcotest.test_case "commuter model alternates work and home" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let visited = ref [] in
         Agent.on_registered f.TG.m (fun fa -> visited := fa :: !visited);
         Workload.Mobility.commuter f.TG.topo f.TG.m ~home:f.TG.net_b
           ~work:f.TG.net_d ~leave_home:(Time.of_sec 1.0)
           ~day_length:(Time.of_sec 2.0) ~days:2;
         Topology.run ~until:(Time.of_sec 12.0) f.TG.topo;
         check
           (Alcotest.list (Alcotest.testable Addr.pp Addr.equal))
           "two days"
           [Addr.host 4 1; Addr.zero; Addr.host 4 1; Addr.zero]
           (List.rev !visited));
    Alcotest.test_case "reliable transfer validates its arguments" `Quick
      (fun () ->
         let f = TG.figure1 () in
         check Alcotest.bool "zero bytes" true
           (try
              ignore
                (Workload.Reliable.start ~sender:f.TG.s ~receiver:f.TG.m
                   ~bytes:0 ~at:Time.zero ());
              false
            with Invalid_argument _ -> true));
    Alcotest.test_case "agent role validation" `Quick (fun () ->
        let f = TG.figure1 () in
        check Alcotest.bool "add_mobile without HA role" true
          (try
             Agent.add_mobile f.TG.s (Addr.host 1 1);
             false
           with Failure _ -> true);
        check Alcotest.bool "move_to without mobile role" true
          (try
             Agent.move_to ~topo:f.TG.topo f.TG.s f.TG.net_d;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case
      "stationary traffic is unperturbed by installed agents" `Quick
      (fun () ->
        (* sanity: the MHRP hooks never perturb ordinary traffic *)
        let f = TG.figure1 () in
        let got = ref 0 in
        Agent.on_app_receive f.TG.s (fun _ -> incr got);
        (* R3 -> S: crosses two routers, no mobility anywhere *)
        Agent.send_udp f.TG.r3 ~dst:(Agent.address f.TG.s)
          (Bytes.create 32);
        Topology.run ~until:(Time.of_sec 1.0) f.TG.topo;
        check Alcotest.int "delivered" 1 !got) ]

let suite = [ ("edge-cases", edge_tests) ]
