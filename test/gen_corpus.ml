(* Golden wire corpus: one named, deterministically-constructed message
   per line, hex-dumped.  The committed test/golden/wire_corpus.hex is
   the reference; a dune diff rule (aliases @runtest and @wire-corpus)
   fails when any codec's output drifts.  After an INTENDED wire-format
   change, regenerate with `dune promote` and review the diff — every
   changed line is a wire-compatibility break.

   Covers the encoders whose byte layout the experiments depend on: IP
   headers (plain, TOS/DF/TTL variants, options), fragmentation, TCP
   segments as the transport sockets emit them (handshake, data,
   teardown, reset), MHRP
   encapsulation (sender-, agent-built and re-tunneled), MHRP control
   messages, ICMP including the location update, the authentication
   extension, and link-state hello/LSA floods. *)

module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module Time = Netsim.Time

let hex buf =
  String.concat ""
    (List.map (Printf.sprintf "%02x") (List.map Char.code
       (List.init (Bytes.length buf) (Bytes.get buf))))

let udp payload_len =
  Ipv4.Udp.encode
    (Ipv4.Udp.make ~src_port:4000 ~dst_port:4001 (Bytes.make payload_len '\x5a'))

let s = Addr.host 1 10
let m = Addr.host 2 10
let ha = Addr.host 2 1
let fa = Addr.host 4 1
let fa2 = Addr.host 5 1

let basic = Packet.make ~id:7 ~proto:Ipv4.Proto.udp ~src:s ~dst:m (udp 16)

let corpus =
  [ ("ip-udp-basic", Packet.encode basic);
    ( "ip-tos-df-ttl1",
      Packet.encode
        (Packet.make ~tos:0x10 ~id:0xBEEF ~dont_fragment:true ~ttl:1
           ~proto:Ipv4.Proto.udp ~src:s ~dst:m (udp 8)) );
    ( "ip-opt-lsrr",
      Packet.encode
        (Packet.make ~id:9
           ~options:[Ipv4.Ip_option.lsrr [ha; fa]; Ipv4.Ip_option.Nop]
           ~proto:Ipv4.Proto.udp ~src:s ~dst:m (udp 8)) );
    ( "ip-opt-record-route",
      Packet.encode
        (Packet.make ~id:10
           ~options:
             [ Ipv4.Ip_option.Record_route
                 { pointer = 8; route = [| s; Addr.zero; Addr.zero |] } ]
           ~proto:Ipv4.Proto.udp ~src:s ~dst:m (udp 8)) ) ]
  @ List.mapi
      (fun i frag -> (Printf.sprintf "ip-frag-%d" i, Packet.encode frag))
      (Packet.fragment
         (Packet.make ~id:11 ~proto:Ipv4.Proto.udp ~src:s ~dst:m (udp 100))
         ~mtu:64)
  @ (let tcp name seg = (name, Ipv4.Tcp_lite.encode seg) in
     let open Ipv4.Tcp_lite in
     [ tcp "tcp-syn"
         (make ~seq:49001 ~flags:[Syn] ~src_port:49152 ~dst_port:80
            Bytes.empty);
       tcp "tcp-syn-ack"
         (make ~seq:77001 ~ack:49002 ~flags:[Syn; Ack] ~src_port:80
            ~dst_port:49152 Bytes.empty);
       tcp "tcp-data-psh-ack"
         (make ~seq:49002 ~ack:77002 ~flags:[Psh; Ack] ~window:0xFFFF
            ~src_port:49152 ~dst_port:80 (Bytes.make 16 '\x42'));
       tcp "tcp-fin-ack"
         (make ~seq:49018 ~ack:77002 ~flags:[Fin; Ack] ~src_port:49152
            ~dst_port:80 Bytes.empty);
       tcp "tcp-rst"
         (make ~seq:0 ~ack:49019 ~flags:[Rst; Ack] ~src_port:80
            ~dst_port:49152 Bytes.empty) ])
  @ (let tunneled = Mhrp.Encap.tunnel_by_agent ~agent:ha ~foreign_agent:fa basic in
     let retunneled =
       match
         Mhrp.Encap.retunnel ~max_prev_sources:8 ~me:fa ~new_dst:fa2 tunneled
       with
       | Some (Mhrp.Encap.Retunneled p) -> p
       | _ -> failwith "gen_corpus: retunnel"
     in
     [ ( "mhrp-tunnel-sender",
         Packet.encode (Mhrp.Encap.tunnel_by_sender ~foreign_agent:fa basic) );
       ("mhrp-tunnel-agent", Packet.encode tunneled);
       ("mhrp-retunneled", Packet.encode retunneled) ])
  @ List.map
      (fun (name, msg) -> (name, Mhrp.Control.encode msg))
      [ ("ctl-reg-request", Mhrp.Control.Reg_request { mobile = m; foreign_agent = fa });
        ("ctl-reg-reply", Mhrp.Control.Reg_reply { mobile = m; accepted = true });
        ("ctl-fa-connect", Mhrp.Control.Fa_connect { mobile = m; mac = Net.Mac.of_int 42 });
        ("ctl-fa-connect-ack", Mhrp.Control.Fa_connect_ack { mobile = m });
        ( "ctl-fa-disconnect",
          Mhrp.Control.Fa_disconnect { mobile = m; new_foreign_agent = fa2 } );
        ("ctl-ha-sync", Mhrp.Control.Ha_sync { mobile = m; foreign_agent = fa });
        ("ctl-ha-sync-ack", Mhrp.Control.Ha_sync_ack { mobile = m });
        ( "ctl-fa-connect-ack-r",
          Mhrp.Control.Fa_connect_ack_r { mobile = m; regional = ha; backup = fa2 } );
        ( "ctl-reg-region",
          Mhrp.Control.Reg_region { mobile = m; foreign_agent = fa; lifetime_s = 300 } );
        ("ctl-reg-region-ack", Mhrp.Control.Reg_region_ack { mobile = m });
        ( "ctl-fa-visitor-miss",
          Mhrp.Control.Fa_visitor_miss { mobile = m; foreign_agent = fa } );
        ( "ctl-region-sync",
          Mhrp.Control.Region_sync { mobile = m; foreign_agent = fa; lifetime_s = 300 } );
        ("ctl-region-sync-ack", Mhrp.Control.Region_sync_ack { mobile = m });
        ( "ctl-region-forward",
          Mhrp.Control.Region_forward { mobile = m; new_regional = fa2 } ) ]
  @ List.map
      (fun (name, msg) -> (name, Ipv4.Icmp.encode msg))
      [ ( "icmp-echo-request",
          Ipv4.Icmp.Echo_request { ident = 3; seq = 1; data = Bytes.make 4 '\x11' } );
        ( "icmp-time-exceeded",
          Ipv4.Icmp.Time_exceeded { code = 0; original = Packet.encode basic } );
        ("icmp-host-unreachable", Ipv4.Icmp.host_unreachable ~original:(Packet.encode basic));
        ( "icmp-location-update",
          Ipv4.Icmp.Location_update { mobile = m; foreign_agent = fa } );
        ( "icmp-agent-advertisement",
          Ipv4.Icmp.Agent_advertisement { agent = fa; home = false; foreign = true } ) ]
  @ (let key = Auth.Siphash.of_string "corpus key" in
     let payload =
       Mhrp.Control.encode
         (Mhrp.Control.Reg_request { mobile = m; foreign_agent = fa })
     in
     let ext =
       Auth.Extension.sign ~key ~spi:7 ~timestamp:(Time.of_ms 1500)
         ~nonce:99L payload
     in
     [("auth-signed-reg-request", Bytes.cat payload (Auth.Extension.encode ext))])
  @ [ ("lsr-hello", Lsr.Packet.encode (Lsr.Packet.Hello { origin = ha }));
      ( "lsr-lsa",
        Lsr.Packet.encode
          (Lsr.Packet.Lsa
             { origin = ha;
               seq = 12;
               links =
                 [ { Lsr.Packet.prefix = Addr.net 2;
                     addr = ha;
                     neighbors = [Addr.host 0 1; Addr.host 0 2] } ] }) ) ]

let () =
  List.iter (fun (name, buf) -> Printf.printf "%s %s\n" name (hex buf)) corpus
