(* Tests for the workload layer (metrics, traffic, mobility, topology
   generators) plus end-to-end integration runs: the campus topology under
   sustained movement, and bit-for-bit determinism of the simulator. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check

let metrics_tests =
  [ Alcotest.test_case "tracks send, hops, delivery per packet" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let metrics = Workload.Metrics.create f.TG.topo in
         let traffic =
           Workload.Traffic.create metrics (Topology.engine f.TG.topo)
         in
         Workload.Metrics.watch_receiver metrics f.TG.m;
         Workload.Traffic.at traffic (Time.of_sec 0.1) (fun () ->
             Workload.Traffic.send_udp traffic ~src:f.TG.s
               ~dst:(Agent.address f.TG.m) ());
         Topology.run ~until:(Time.of_sec 2.0) f.TG.topo;
         check Alcotest.int "one record" 1
           (List.length (Workload.Metrics.records metrics));
         check (Alcotest.float 1e-9) "all delivered" 1.0
           (Workload.Metrics.delivery_ratio metrics);
         check (Alcotest.float 1e-9) "hops" 3.0
           (Workload.Metrics.mean_hops metrics);
         check Alcotest.bool "latency positive" true
           (Workload.Metrics.mean_latency_us metrics > 0.0));
    Alcotest.test_case "tracks tunneled packets across rewrites" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let metrics = Workload.Metrics.create f.TG.topo in
         let traffic =
           Workload.Traffic.create metrics (Topology.engine f.TG.topo)
         in
         Workload.Metrics.watch_receiver metrics f.TG.m;
         Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 0.5)
           f.TG.net_d;
         Workload.Traffic.at traffic (Time.of_sec 1.5) (fun () ->
             Workload.Traffic.send_udp traffic ~src:f.TG.s
               ~dst:(Agent.address f.TG.m) ());
         Topology.run ~until:(Time.of_sec 3.0) f.TG.topo;
         check (Alcotest.float 1e-9) "delivered through tunnel" 1.0
           (Workload.Metrics.delivery_ratio metrics);
         check (Alcotest.float 1e-9) "overhead observed" 12.0
           (Workload.Metrics.mean_overhead_bytes metrics));
    Alcotest.test_case "cbr emits the requested count and spacing" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let metrics = Workload.Metrics.create f.TG.topo in
         let traffic =
           Workload.Traffic.create metrics (Topology.engine f.TG.topo)
         in
         Workload.Metrics.watch_receiver metrics f.TG.m;
         Workload.Traffic.cbr traffic ~src:f.TG.s
           ~dst:(Agent.address f.TG.m) ~start:(Time.of_sec 1.0)
           ~interval:(Time.of_ms 50) ~count:10 ();
         Topology.run ~until:(Time.of_sec 3.0) f.TG.topo;
         let rs = Workload.Metrics.records metrics in
         check Alcotest.int "ten packets" 10 (List.length rs);
         let times =
           List.map (fun r -> Time.to_us r.Workload.Metrics.sent_at) rs
         in
         check Alcotest.int "first at 1s" 1_000_000 (List.nth times 0);
         check Alcotest.int "last at 1.45s" 1_450_000 (List.nth times 9));
    Alcotest.test_case "fresh ids wrap around without hitting zero" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let metrics = Workload.Metrics.create f.TG.topo in
         let traffic =
           Workload.Traffic.create ~first_id:0xFFFE metrics
             (Topology.engine f.TG.topo)
         in
         let a = Workload.Traffic.fresh_id traffic in
         let b = Workload.Traffic.fresh_id traffic in
         let c = Workload.Traffic.fresh_id traffic in
         check (Alcotest.list Alcotest.int) "wrap" [0xFFFE; 0xFFFF; 1]
           [a; b; c]) ]

let reqresp_tests =
  [ Alcotest.test_case
      "tcp request/response to a visiting mobile server" `Quick (fun () ->
          let f = TG.figure1 () in
          let metrics = Workload.Metrics.create f.TG.topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine f.TG.topo)
          in
          Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 0.5)
            f.TG.net_d;
          Workload.Traffic.request_response traffic ~client:f.TG.s
            ~server:f.TG.m ~start:(Time.of_sec 2.0)
            ~interval:(Time.of_ms 100) ~count:5 ();
          Topology.run ~until:(Time.of_sec 5.0) f.TG.topo;
          check Alcotest.int "all responses back" 5
            (Workload.Traffic.responses_received traffic);
          (* the exchange rides a real connected socket now: requests to
             the visiting server were tunneled, responses travelled as
             plain IP, and no raw segments were tracked as datagrams *)
          check Alcotest.int "no raw packet records" 0
            (List.length (Workload.Metrics.records metrics))) ]

let mobility_tests =
  [ Alcotest.test_case "itinerary visits the scripted stops" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let visited = ref [] in
         Agent.on_registered f.TG.m (fun fa -> visited := fa :: !visited);
         Workload.Mobility.itinerary f.TG.topo f.TG.m
           [ (Time.of_sec 1.0, f.TG.net_d);
             (Time.of_sec 2.0, f.TG.net_b) ];
         Topology.run ~until:(Time.of_sec 4.0) f.TG.topo;
         check (Alcotest.list (Alcotest.testable Addr.pp Addr.equal))
           "fa sequence" [Addr.host 4 1; Addr.zero] (List.rev !visited));
    Alcotest.test_case "ping_pong alternates between two cells" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let net_e = Topology.add_lan f.TG.topo ~net:5 "netE" in
         let r5n =
           Topology.add_router f.TG.topo "R5" [(f.TG.net_c, 3); (net_e, 1)]
         in
         Topology.compute_routes f.TG.topo;
         let r5 = Agent.create r5n in
         Agent.enable_foreign_agent r5
           ~iface:(Option.get (Node.iface_to r5n (Net.Lan.prefix net_e)));
         let visited = ref [] in
         Agent.on_registered f.TG.m (fun fa -> visited := fa :: !visited);
         Workload.Mobility.ping_pong f.TG.topo f.TG.m ~a:f.TG.net_d
           ~b:net_e ~start:(Time.of_sec 1.0) ~period:(Time.of_sec 1.0)
           ~moves:4;
         Topology.run ~until:(Time.of_sec 6.0) f.TG.topo;
         check (Alcotest.list (Alcotest.testable Addr.pp Addr.equal))
           "alternating"
           [Addr.host 4 1; Addr.host 5 1; Addr.host 4 1; Addr.host 5 1]
           (List.rev !visited));
    Alcotest.test_case "random_waypoint keeps moving until deadline"
      `Quick (fun () ->
          let c =
            TG.campuses ~campuses:3 ~mobiles_per_campus:1 ~correspondents:0
              ()
          in
          let m = c.TG.c_mobiles.(0) in
          let moves = ref 0 in
          Agent.on_registered m (fun _ -> incr moves);
          Workload.Mobility.random_waypoint c.TG.c_topo m
            ~rng:(Topology.rng c.TG.c_topo) ~lans:c.TG.c_cells
            ~dwell_mean:(Time.of_sec 1.0) ~until:(Time.of_sec 10.0);
          Topology.run ~until:(Time.of_sec 12.0) c.TG.c_topo;
          check Alcotest.bool "moved several times" true (!moves >= 3)) ]

let topo_gen_tests =
  [ Alcotest.test_case "figure1 matches the paper's layout" `Quick
      (fun () ->
         let f = TG.figure1 () in
         check Alcotest.int "six nodes" 6
           (List.length (Topology.nodes f.TG.topo));
         check Alcotest.int "five networks" 5
           (List.length (Topology.lans f.TG.topo));
         (* M's home is network B and R2 is its home agent *)
         check Alcotest.bool "m on net B" true
           (Addr.Prefix.mem (Agent.address f.TG.m)
              (Net.Lan.prefix f.TG.net_b));
         match Agent.home_agent f.TG.r2 with
         | Some ha ->
           check Alcotest.bool "r2 serves m" true
             (Mhrp.Home_agent.serves ha (Agent.address f.TG.m))
         | None -> Alcotest.fail "r2 must be home agent");
    Alcotest.test_case "campuses wiring: sizes and roles" `Quick (fun () ->
        let c =
          TG.campuses ~campuses:4 ~mobiles_per_campus:3 ~correspondents:5
            ()
        in
        check Alcotest.int "mobiles" 12 (Array.length c.TG.c_mobiles);
        check Alcotest.int "senders" 5 (Array.length c.TG.c_senders);
        Array.iteri
          (fun i r ->
             check Alcotest.bool
               (Printf.sprintf "router %d has both roles" i) true
               (Agent.home_agent r <> None
                && Agent.foreign_agent r <> None))
          c.TG.c_routers);
    Alcotest.test_case "chain connects end to end" `Quick (fun () ->
        let ch = TG.chain ~n:5 () in
        let first = Agent.node ch.TG.ch_routers.(0) in
        let last = Agent.node ch.TG.ch_routers.(4) in
        (* 4 router-to-router links plus the final stub LAN *)
        check (Alcotest.option Alcotest.int) "5 links away" (Some 5)
          (Net.Routing.path_length
             ~nodes:(Topology.nodes ch.TG.ch_topo)
             ~src:first
             ~dst_lan:(Node.iface_lan last
                         (Option.get
                            (Node.iface_to last
                               (Net.Lan.prefix ch.TG.ch_stubs.(4))))))) ]

(* --- larger integration runs --- *)

let integration_tests =
  [ Alcotest.test_case
      "campus roaming: continuous traffic to a roaming host mostly arrives"
      `Slow (fun () ->
          let c =
            TG.campuses ~campuses:4 ~mobiles_per_campus:2 ~correspondents:4
              ()
          in
          let topo = c.TG.c_topo in
          let metrics = Workload.Metrics.create topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine topo)
          in
          let m = c.TG.c_mobiles.(0) in
          Workload.Metrics.watch_receiver metrics m;
          (* roam across all four cells *)
          Workload.Mobility.itinerary topo m
            [ (Time.of_sec 1.0, c.TG.c_cells.(1));
              (Time.of_sec 4.0, c.TG.c_cells.(2));
              (Time.of_sec 7.0, c.TG.c_cells.(3));
              (Time.of_sec 10.0, c.TG.c_homes.(0)) ];
          (* all four correspondents send CBR throughout *)
          (* offset the CBR phase past the ~15 ms handoff window after
             each move: packets in flight during a handoff are genuine
             physical losses MHRP does not buffer against (a separate test
             asserts that window exists) *)
          Array.iter
            (fun s ->
               Workload.Traffic.cbr traffic ~src:s
                 ~dst:(Agent.address m) ~start:(Time.of_sec 0.530)
                 ~interval:(Time.of_ms 250) ~count:50 ())
            c.TG.c_senders;
          Topology.run ~until:(Time.of_sec 16.0) topo;
          let ratio = Workload.Metrics.delivery_ratio metrics in
          check Alcotest.bool
            (Printf.sprintf "delivery ratio %.3f >= 0.99" ratio) true
            (ratio >= 0.99);
          (* after settling back home there is no residual tunneling *)
          check Alcotest.bool "home at end" true
            (match Agent.mobile m with
             | Some mh -> Mhrp.Mobile_host.is_home mh
             | None -> false));
    Alcotest.test_case "two mobile hosts visiting each other's campuses"
      `Slow (fun () ->
          let c =
            TG.campuses ~campuses:2 ~mobiles_per_campus:1 ~correspondents:0
              ()
          in
          let topo = c.TG.c_topo in
          let metrics = Workload.Metrics.create topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine topo)
          in
          let m0 = c.TG.c_mobiles.(0) and m1 = c.TG.c_mobiles.(1) in
          Workload.Metrics.watch_receiver metrics m0;
          Workload.Metrics.watch_receiver metrics m1;
          (* swap campuses *)
          Workload.Mobility.move_at topo m0 ~at:(Time.of_sec 1.0)
            c.TG.c_cells.(1);
          Workload.Mobility.move_at topo m1 ~at:(Time.of_sec 1.0)
            c.TG.c_cells.(0);
          (* they talk to each other: mobile-to-mobile via both tunnels *)
          Workload.Traffic.cbr traffic ~src:m0 ~dst:(Agent.address m1)
            ~start:(Time.of_sec 3.0) ~interval:(Time.of_ms 200) ~count:10
            ();
          Workload.Traffic.cbr traffic ~src:m1 ~dst:(Agent.address m0)
            ~start:(Time.of_sec 3.0) ~interval:(Time.of_ms 200) ~count:10
            ();
          Topology.run ~until:(Time.of_sec 10.0) topo;
          check (Alcotest.float 1e-9) "all 20 delivered" 1.0
            (Workload.Metrics.delivery_ratio metrics));
    Alcotest.test_case
      "handoff loss window: packets racing a move are lost, later ones not"
      `Quick (fun () ->
          let f = TG.figure1 () in
          let metrics = Workload.Metrics.create f.TG.topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine f.TG.topo)
          in
          Workload.Metrics.watch_receiver metrics f.TG.m;
          Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 1.0)
            f.TG.net_d;
          (* in flight exactly at the move: lost; 100 ms later: fine *)
          Workload.Traffic.at traffic (Time.of_sec 1.0) (fun () ->
              Workload.Traffic.send_udp traffic ~src:f.TG.s
                ~dst:(Agent.address f.TG.m) ());
          Workload.Traffic.at traffic (Time.of_sec 1.1) (fun () ->
              Workload.Traffic.send_udp traffic ~src:f.TG.s
                ~dst:(Agent.address f.TG.m) ());
          Topology.run ~until:(Time.of_sec 4.0) f.TG.topo;
          let rs = Workload.Metrics.records metrics in
          check Alcotest.bool "racing packet lost" true
            ((List.nth rs 0).Workload.Metrics.delivered_at = None);
          check Alcotest.bool "later packet delivered" true
            ((List.nth rs 1).Workload.Metrics.delivered_at <> None));
    Alcotest.test_case "simulation is deterministic across runs" `Slow
      (fun () ->
         let run_once () =
           let c =
             TG.campuses ~campuses:3 ~mobiles_per_campus:2
               ~correspondents:3 ~seed:99 ()
           in
           let topo = c.TG.c_topo in
           let metrics = Workload.Metrics.create topo in
           let traffic =
             Workload.Traffic.create metrics (Topology.engine topo)
           in
           Array.iter
             (fun m ->
                Workload.Metrics.watch_receiver metrics m;
                Workload.Mobility.random_waypoint topo m
                  ~rng:(Topology.rng topo) ~lans:c.TG.c_cells
                  ~dwell_mean:(Time.of_sec 2.0) ~until:(Time.of_sec 10.0))
             c.TG.c_mobiles;
           Array.iter
             (fun s ->
                Workload.Traffic.cbr traffic ~src:s
                  ~dst:(Agent.address c.TG.c_mobiles.(0))
                  ~start:(Time.of_sec 0.5) ~interval:(Time.of_ms 300)
                  ~count:30 ())
             c.TG.c_senders;
           Topology.run ~until:(Time.of_sec 12.0) topo;
           ( Workload.Metrics.delivery_ratio metrics,
             Workload.Metrics.mean_hops metrics,
             Workload.Metrics.mean_latency_us metrics,
             Topology.total_frames topo )
         in
         let a = run_once () and b = run_once () in
         check Alcotest.bool "identical outcomes" true (a = b));
    Alcotest.test_case
      "scalability shape: MHRP state at home agents only" `Slow (fun () ->
          let c =
            TG.campuses ~campuses:4 ~mobiles_per_campus:4 ~correspondents:0
              ()
          in
          let topo = c.TG.c_topo in
          (* every mobile moves to the next campus's cell *)
          Array.iteri
            (fun i m ->
               Workload.Mobility.move_at topo m ~at:(Time.of_sec 1.0)
                 c.TG.c_cells.((i / 4 + 1) mod 4))
            c.TG.c_mobiles;
          Topology.run ~until:(Time.of_sec 5.0) topo;
          (* each home agent only stores its own four mobiles *)
          Array.iter
            (fun r ->
               match Agent.home_agent r with
               | Some ha ->
                 check Alcotest.int "4 records" (4 * 8)
                   (Mhrp.Home_agent.state_bytes ha)
               | None -> Alcotest.fail "router must be HA")
            c.TG.c_routers) ]

let suite =
  [ ("metrics-traffic", metrics_tests);
    ("request-response", reqresp_tests); ("mobility", mobility_tests);
    ("topo-gen", topo_gen_tests); ("integration", integration_tests) ]
