(* Tests for the compact int-keyed state backing (PR 8): the
   [Ipv4.Int_table] store, packed [Addr] keys, the re-compiled
   [Net.Route] lookup structures, and the [Buffer_pool] byte cap. *)

module Addr = Ipv4.Addr
module Int_table = Ipv4.Int_table
module Route = Net.Route

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let arb_addr =
  QCheck.map
    (fun n -> Addr.of_int (n land 0xFFFF_FFFF))
    QCheck.(int_bound 0x3FFFFFFF)

(* --- packed Addr keys --- *)

let addr_key_tests =
  [ qtest
      (QCheck.Test.make ~name:"packed key roundtrip (of_key . to_key = id)"
         ~count:1000 arb_addr (fun a ->
           Addr.to_key a >= 0 && Addr.equal a (Addr.of_key (Addr.to_key a))));
    Alcotest.test_case "of_key rejects non-keys" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Addr.of_int: out of range") (fun () ->
            ignore (Addr.of_key (-1)));
        Alcotest.check_raises "too wide"
          (Invalid_argument "Addr.of_int: out of range") (fun () ->
            ignore (Addr.of_key 0x1_0000_0000))) ]

(* --- Int_table vs a reference Hashtbl model --- *)

(* A random operation sequence applied to both the compact table and a
   reference [Hashtbl]; all observations must agree.  Keys are drawn
   from a small space so inserts, overwrites and removes all collide
   frequently and the backward-shift deletion repair gets exercised. *)
let table_agrees_with_model ops =
  let t = Int_table.create () in
  let m : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (op, k, v) ->
       match op mod 3 with
       | 0 | 1 ->
         Int_table.replace t k v;
         Hashtbl.replace m k v
       | _ ->
         Int_table.remove t k;
         Hashtbl.remove m k)
    ops;
  let sorted_bindings fold t =
    fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Int_table.length t = Hashtbl.length m
  && sorted_bindings Int_table.fold t
     = sorted_bindings (fun f t acc -> Hashtbl.fold f t acc) m
  && List.for_all
       (fun k ->
          Int_table.find_opt t k = Hashtbl.find_opt m k
          && Int_table.mem t k = Hashtbl.mem m k
          && Int_table.find t k ~default:(-1)
             = Option.value (Hashtbl.find_opt m k) ~default:(-1))
       (List.init 64 (fun i -> i))

let int_table_tests =
  [ qtest
      (QCheck.Test.make ~name:"int_table agrees with Hashtbl model"
         ~count:300
         QCheck.(small_list (triple small_nat (int_bound 63) small_nat))
         table_agrees_with_model);
    Alcotest.test_case "grows through many inserts" `Quick (fun () ->
        let t = Int_table.create () in
        for i = 0 to 9_999 do
          Int_table.replace t (i * 7) i
        done;
        check Alcotest.int "length" 10_000 (Int_table.length t);
        for i = 0 to 9_999 do
          if Int_table.find t (i * 7) ~default:(-1) <> i then
            Alcotest.failf "lost key %d" (i * 7)
        done;
        check Alcotest.bool "footprint sane" true
          (Int_table.footprint_bytes t >= 10_000 * 16));
    Alcotest.test_case "negative keys rejected / absent" `Quick (fun () ->
        let t = Int_table.create () in
        Alcotest.check_raises "replace"
          (Invalid_argument "Int_table.replace: negative key") (fun () ->
            Int_table.replace t (-5) 1);
        check Alcotest.bool "mem" false (Int_table.mem t (-5));
        check (Alcotest.option Alcotest.int) "find_opt" None
          (Int_table.find_opt t (-5)));
    Alcotest.test_case "reset keeps capacity, drops bindings" `Quick
      (fun () ->
         let t = Int_table.create () in
         for i = 0 to 999 do
           Int_table.replace t i i
         done;
         let cap = Int_table.capacity t in
         Int_table.reset t;
         check Alcotest.int "empty" 0 (Int_table.length t);
         check Alcotest.int "capacity kept" cap (Int_table.capacity t);
         check (Alcotest.option Alcotest.int) "gone" None
           (Int_table.find_opt t 3)) ]

(* --- compiled Route lookups vs the entry-list reference --- *)

let target_equal (a : Route.target) b = a = b

(* first match over the descending entry list: the semantics the
   compiled per-length tables must reproduce *)
let ref_lookup table addr =
  let rec go = function
    | [] -> None
    | (e : Route.entry) :: rest ->
      if Addr.Prefix.mem addr e.prefix then Some e.target else go rest
  in
  go (Route.entries table)

(* Random mix of /32 host routes, aggregates of random length, and a
   default route; compiled lookup must equal the list scan for hosts
   inside, near, and far from every prefix. *)
let compiled_equals_reference (pairs, probes) =
  let pairs =
    List.map
      (fun (net_id, len, gw) ->
         let len = 8 + (len mod 25) in
         (* /8../32 *)
         let p = Addr.Prefix.network_of (Addr.host (net_id mod 600) 1) len in
         (p, Route.Via (Addr.host (gw mod 600) 254)))
      pairs
  in
  let table = Route.bulk ((Addr.Prefix.make Addr.zero 0, Route.Direct 0) :: pairs) in
  List.for_all
    (fun (net_id, host_id) ->
       let a = Addr.host (net_id mod 600) (host_id mod 256) in
       match Route.lookup table a, ref_lookup table a with
       | Some x, Some y -> target_equal x y
       | None, None -> true
       | _ -> false)
    probes

(* One region prefix vs one /32 per host must route identically for
   every host of the region — the aggregation the E19 topology relies
   on to collapse a region's mobile hosts to one entry. *)
let aggregate_equals_host_routes (net_id, gw_net) =
  let net_id = net_id mod 600 and gw_net = gw_net mod 600 in
  let gw = Route.Via (Addr.host gw_net 254) in
  let prefix = Addr.net net_id in
  let aggregated = Route.bulk [(prefix, gw)] in
  let per_host =
    Route.bulk
      (List.init 254 (fun i ->
           (Addr.Prefix.make (Addr.Prefix.host prefix (i + 1)) 32, gw)))
  in
  List.for_all
    (fun i ->
       let a = Addr.Prefix.host prefix (i + 1) in
       match Route.lookup aggregated a, Route.lookup per_host a with
       | Some x, Some y -> target_equal x y
       | _ -> false)
    (List.init 254 (fun i -> i))
  (* hosts outside the region must miss both tables *)
  && Route.lookup aggregated (Addr.host ((net_id + 1) mod 600) 9)
     = Route.lookup per_host (Addr.host ((net_id + 1) mod 600) 9)

let route_tests =
  [ qtest
      (QCheck.Test.make
         ~name:"compiled lookup = descending first-match reference"
         ~count:200
         QCheck.(
           pair
             (small_list (triple small_nat small_nat small_nat))
             (small_list (pair small_nat small_nat)))
         compiled_equals_reference);
    qtest
      (QCheck.Test.make
         ~name:"prefix-aggregated lookup = per-/32 lookup" ~count:100
         QCheck.(pair small_nat small_nat)
         aggregate_equals_host_routes);
    Alcotest.test_case "aggregate is one compiled entry" `Quick (fun () ->
        let gw = Route.Via (Addr.host 9 254) in
        let aggregated = Route.bulk [(Addr.net 3, gw)] in
        let per_host =
          Route.bulk
            (List.init 254 (fun i ->
                 (Addr.Prefix.make (Addr.host 3 (i + 1)) 32, gw)))
        in
        check Alcotest.int "entries" 1 (Route.size aggregated);
        check Alcotest.bool "compiled footprint collapses" true
          (Route.compiled_footprint_bytes aggregated * 10
           < Route.compiled_footprint_bytes per_host)) ]

(* --- Buffer_pool byte cap --- *)

let pool_tests =
  [ Alcotest.test_case "byte cap bounds a burst of large buffers" `Quick
      (fun () ->
         let pool =
           Ipv4.Buffer_pool.create ~max_per_class:64
             ~max_total_bytes:100_000 ()
         in
         (* 200 distinct sizes * 4 KiB each: the per-class bound alone
            would happily pin ~800 KiB forever *)
         for size = 4_000 to 4_199 do
           Ipv4.Buffer_pool.release pool (Bytes.create size)
         done;
         check Alcotest.bool "pinned bytes capped" true
           (Ipv4.Buffer_pool.pooled_bytes pool <= 100_000);
         check Alcotest.bool "excess discarded" true
           (Ipv4.Buffer_pool.cap_discards pool > 0);
         check Alcotest.int "class cap untouched" 0
           (Ipv4.Buffer_pool.discards pool);
         (* capped pool still serves: take one back out, release again *)
         let b = Ipv4.Buffer_pool.take pool 4_000 in
         check Alcotest.int "len" 4_000 (Bytes.length b);
         Ipv4.Buffer_pool.release pool b;
         check Alcotest.bool "still capped" true
           (Ipv4.Buffer_pool.pooled_bytes pool <= 100_000));
    Alcotest.test_case "take returns pooled bytes to budget" `Quick
      (fun () ->
         let pool =
           Ipv4.Buffer_pool.create ~max_total_bytes:8_192 ()
         in
         Ipv4.Buffer_pool.release pool (Bytes.create 8_000);
         check Alcotest.int "pinned" 8_000
           (Ipv4.Buffer_pool.pooled_bytes pool);
         ignore (Ipv4.Buffer_pool.take pool 8_000);
         check Alcotest.int "unpinned" 0
           (Ipv4.Buffer_pool.pooled_bytes pool);
         (* budget freed by take is available again *)
         Ipv4.Buffer_pool.release pool (Bytes.create 8_000);
         check Alcotest.int "re-pinned" 8_000
           (Ipv4.Buffer_pool.pooled_bytes pool);
         check Alcotest.int "no cap discards" 0
           (Ipv4.Buffer_pool.cap_discards pool)) ]

let suite =
  [ ("compact-addr-keys", addr_key_tests);
    ("compact-int-table", int_table_tests);
    ("compact-route", route_tests);
    ("compact-buffer-pool", pool_tests) ]
