(* Tests for the network substrate: link layer, LANs, routing tables,
   nodes, shortest-path computation, topology plumbing. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module Mac = Net.Mac
module Lan = Net.Lan
module Node = Net.Node
module Route = Net.Route
module Topology = Net.Topology

let check = Alcotest.check
let addr_testable = Alcotest.testable Addr.pp Addr.equal
let mac_testable = Alcotest.testable Mac.pp Mac.equal

(* --- Mac --- *)

let mac_tests =
  [ Alcotest.test_case "formatting" `Quick (fun () ->
        check Alcotest.string "format" "02:00:00:00:00:2a"
          (Mac.to_string (Mac.of_int 0x0200_0000_002A)));
    Alcotest.test_case "broadcast is reserved" `Quick (fun () ->
        check Alcotest.bool "is broadcast" true
          (Mac.is_broadcast Mac.broadcast);
        Alcotest.check_raises "reserved"
          (Invalid_argument "Mac.of_int: broadcast reserved") (fun () ->
            ignore (Mac.of_int (Mac.to_int Mac.broadcast))));
    Alcotest.test_case "allocator yields distinct addresses" `Quick
      (fun () ->
         let alloc = Mac.Alloc.create () in
         let a = Mac.Alloc.fresh alloc and b = Mac.Alloc.fresh alloc in
         check Alcotest.bool "distinct" false (Mac.equal a b)) ]

(* --- Arp / Frame --- *)

let arp_tests =
  [ Alcotest.test_case "request has no target mac" `Quick (fun () ->
        let a =
          Net.Arp.request ~sender_mac:(Mac.of_int 1)
            ~sender_ip:(Addr.host 1 1) ~target_ip:(Addr.host 1 2)
        in
        check Alcotest.bool "none" true (a.Net.Arp.target_mac = None));
    Alcotest.test_case "gratuitous binds ip to mac on both fields" `Quick
      (fun () ->
         let g = Net.Arp.gratuitous ~mac:(Mac.of_int 2) ~ip:(Addr.host 1 5) in
         check addr_testable "sender" (Addr.host 1 5) g.Net.Arp.sender_ip;
         check addr_testable "target" (Addr.host 1 5) g.Net.Arp.target_ip;
         check mac_testable "mac" (Mac.of_int 2) g.Net.Arp.sender_mac);
    Alcotest.test_case "frame wire length includes ethernet overhead"
      `Quick (fun () ->
          let f =
            Net.Frame.ip ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
              (Bytes.create 100)
          in
          check Alcotest.int "ip" 118 (Net.Frame.wire_length f);
          let g =
            Net.Frame.arp ~src:(Mac.of_int 1) ~dst:Mac.broadcast
              (Net.Arp.gratuitous ~mac:(Mac.of_int 1) ~ip:Addr.zero)
          in
          check Alcotest.int "arp" 46 (Net.Frame.wire_length g)) ]

(* --- Lan --- *)

let with_lan f =
  let engine = Netsim.Engine.create () in
  let lan = Lan.create ~engine ~name:"test" (Addr.net 1) in
  f engine lan

let lan_tests =
  [ Alcotest.test_case "unicast reaches only its target" `Quick (fun () ->
        with_lan (fun engine lan ->
            let got_a = ref 0 and got_b = ref 0 in
            Lan.attach lan (Mac.of_int 1) (fun _ -> incr got_a);
            Lan.attach lan (Mac.of_int 2) (fun _ -> incr got_b);
            Lan.send lan
              (Net.Frame.ip ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
                 (Bytes.create 10));
            Netsim.Engine.run engine;
            check Alcotest.int "a" 0 !got_a;
            check Alcotest.int "b" 1 !got_b));
    Alcotest.test_case "broadcast reaches all but sender" `Quick (fun () ->
        with_lan (fun engine lan ->
            let got = ref [] in
            List.iter
              (fun i ->
                 Lan.attach lan (Mac.of_int i) (fun _ ->
                     got := i :: !got))
              [1; 2; 3];
            Lan.send lan
              (Net.Frame.ip ~src:(Mac.of_int 1) ~dst:Mac.broadcast
                 (Bytes.create 10));
            Netsim.Engine.run engine;
            check (Alcotest.list Alcotest.int) "receivers" [2; 3]
              (List.sort compare !got)));
    Alcotest.test_case "absent destination silently dropped" `Quick
      (fun () ->
         with_lan (fun engine lan ->
             Lan.attach lan (Mac.of_int 1) (fun _ -> ());
             Lan.send lan
               (Net.Frame.ip ~src:(Mac.of_int 1) ~dst:(Mac.of_int 9)
                  (Bytes.create 10));
             Netsim.Engine.run engine;
             check Alcotest.int "sent counted" 1 (Lan.frames_sent lan)));
    Alcotest.test_case "down LAN delivers nothing" `Quick (fun () ->
        with_lan (fun engine lan ->
            let got = ref 0 in
            Lan.attach lan (Mac.of_int 1) (fun _ -> incr got);
            Lan.set_up lan false;
            Lan.send lan
              (Net.Frame.ip ~src:(Mac.of_int 2) ~dst:(Mac.of_int 1)
                 (Bytes.create 10));
            Netsim.Engine.run engine;
            check Alcotest.int "nothing" 0 !got));
    Alcotest.test_case "latency and serialization delay apply" `Quick
      (fun () ->
         let engine = Netsim.Engine.create () in
         let lan =
           Lan.create ~engine ~name:"slow" ~latency:(Time.of_ms 10)
             ~bandwidth_bps:8_000 (Addr.net 1)
         in
         let at = ref Time.zero in
         Lan.attach lan (Mac.of_int 1) (fun _ ->
             at := Netsim.Engine.now engine);
         (* 100-byte payload + 18 ethernet = 118 bytes = 944 bits at
            8 kb/s = 118 ms serialization + 10 ms latency *)
         Lan.send lan
           (Net.Frame.ip ~src:(Mac.of_int 2) ~dst:(Mac.of_int 1)
              (Bytes.create 100));
         Netsim.Engine.run engine;
         check Alcotest.int "arrival time" 128_000 (Time.to_us !at));
    Alcotest.test_case "detach stops delivery, reattach allowed" `Quick
      (fun () ->
         with_lan (fun engine lan ->
             let got = ref 0 in
             Lan.attach lan (Mac.of_int 1) (fun _ -> incr got);
             Lan.detach lan (Mac.of_int 1);
             Lan.send lan
               (Net.Frame.ip ~src:(Mac.of_int 2) ~dst:(Mac.of_int 1)
                  (Bytes.create 4));
             Netsim.Engine.run engine;
             check Alcotest.int "after detach" 0 !got;
             Lan.attach lan (Mac.of_int 1) (fun _ -> incr got);
             check Alcotest.bool "attached" true
               (Lan.attached lan (Mac.of_int 1))));
    Alcotest.test_case "duplicate attach rejected" `Quick (fun () ->
        with_lan (fun _ lan ->
            Lan.attach lan (Mac.of_int 1) (fun _ -> ());
            check Alcotest.bool "raises" true
              (try
                 Lan.attach lan (Mac.of_int 1) (fun _ -> ());
                 false
               with Invalid_argument _ -> true)));
    Alcotest.test_case "stations list tracks attach and detach" `Quick
      (fun () ->
         (* The sorted station list is cached; every mutation must
            invalidate it. *)
         with_lan (fun _ lan ->
             List.iter
               (fun i -> Lan.attach lan (Mac.of_int i) (fun _ -> ()))
               [3; 1; 2];
             check (Alcotest.list mac_testable) "sorted"
               (List.map Mac.of_int [1; 2; 3]) (Lan.stations lan);
             Lan.detach lan (Mac.of_int 2);
             check (Alcotest.list mac_testable) "after detach"
               (List.map Mac.of_int [1; 3]) (Lan.stations lan);
             Lan.attach lan (Mac.of_int 2) (fun _ -> ());
             check (Alcotest.list mac_testable) "after reattach"
               (List.map Mac.of_int [1; 2; 3]) (Lan.stations lan)));
    Alcotest.test_case "monitors fire in registration order" `Quick
      (fun () ->
         with_lan (fun engine lan ->
             let order = ref [] in
             Lan.attach lan (Mac.of_int 1) (fun _ -> ());
             Lan.attach lan (Mac.of_int 2) (fun _ -> ());
             List.iter
               (fun i -> Lan.add_monitor lan (fun _ -> order := i :: !order))
               [1; 2; 3];
             Lan.send lan
               (Net.Frame.ip ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
                  (Bytes.create 4));
             Netsim.Engine.run engine;
             check (Alcotest.list Alcotest.int) "registration order"
               [1; 2; 3] (List.rev !order))) ]

(* --- Route --- *)

let route_tests =
  [ Alcotest.test_case "longest prefix wins" `Quick (fun () ->
        let t =
          Route.empty
          |> (fun t -> Route.add_default t (Route.Via (Addr.host 0 1)))
          |> (fun t ->
              Route.add t (Addr.net 5) (Route.Via (Addr.host 0 2)))
          |> fun t -> Route.add_host t (Addr.host 5 9) (Route.Direct 0)
        in
        check Alcotest.bool "host route" true
          (Route.lookup t (Addr.host 5 9) = Some (Route.Direct 0));
        check Alcotest.bool "net route" true
          (Route.lookup t (Addr.host 5 8)
           = Some (Route.Via (Addr.host 0 2)));
        check Alcotest.bool "default" true
          (Route.lookup t (Addr.host 9 1)
           = Some (Route.Via (Addr.host 0 1))));
    Alcotest.test_case "add replaces same prefix" `Quick (fun () ->
        let t = Route.add Route.empty (Addr.net 1) (Route.Direct 0) in
        let t = Route.add t (Addr.net 1) (Route.Direct 1) in
        check Alcotest.int "one entry" 1 (Route.size t);
        check Alcotest.bool "replaced" true
          (Route.lookup t (Addr.host 1 1) = Some (Route.Direct 1)));
    Alcotest.test_case "remove host route restores net route" `Quick
      (fun () ->
         let t = Route.add Route.empty (Addr.net 1) (Route.Direct 0) in
         let t = Route.add_host t (Addr.host 1 7) (Route.Direct 3) in
         let t = Route.remove_host t (Addr.host 1 7) in
         check Alcotest.bool "net again" true
           (Route.lookup t (Addr.host 1 7) = Some (Route.Direct 0)));
    Alcotest.test_case "empty table finds nothing" `Quick (fun () ->
        check Alcotest.bool "none" true
          (Route.lookup Route.empty (Addr.host 1 1) = None));
    Alcotest.test_case "bulk matches fold of add" `Quick (fun () ->
        (* Includes a duplicate prefix: the later binding must win and
           occupy the position the replacing [add] would have given it. *)
        let p32 a = Addr.Prefix.make a 32 in
        let pairs =
          [ (Addr.Prefix.make Addr.zero 0, Route.Via (Addr.host 0 1));
            (Addr.net 5, Route.Via (Addr.host 0 2));
            (p32 (Addr.host 5 9), Route.Direct 0);
            (Addr.net 7, Route.Via (Addr.host 0 3));
            (Addr.net 5, Route.Via (Addr.host 0 9));  (* replaces *)
            (p32 (Addr.host 7 1), Route.Via (Addr.host 0 4)) ]
        in
        let folded =
          List.fold_left
            (fun t (p, tg) -> Route.add t p tg)
            Route.empty pairs
        in
        let bulked = Route.bulk pairs in
        check Alcotest.int "same size" (Route.size folded)
          (Route.size bulked);
        List.iter2
          (fun (a : Route.entry) (b : Route.entry) ->
             check Alcotest.bool "same prefix" true
               (Addr.Prefix.equal a.Route.prefix b.Route.prefix);
             check Alcotest.bool "same target" true
               (a.Route.target = b.Route.target))
          (Route.entries folded) (Route.entries bulked));
    Alcotest.test_case "compiled lookup agrees across host-route churn"
      `Quick (fun () ->
         (* Many /32 routes exercise the hash fast path; net routes and the
            default exercise the prefix-scan fallback.  Tables are
            persistent, so a derived table must not see a stale compiled
            form and the original must keep answering as before. *)
         let t =
           Route.add_default Route.empty (Route.Via (Addr.host 0 1))
         in
         let t = Route.add t (Addr.net 3) (Route.Direct 1) in
         let t =
           List.fold_left
             (fun t k ->
                Route.add_host t (Addr.host 3 k) (Route.Via (Addr.host 0 k)))
             t
             (List.init 100 (fun k -> k + 1))
         in
         check Alcotest.bool "host hit" true
           (Route.lookup t (Addr.host 3 42)
            = Some (Route.Via (Addr.host 0 42)));
         check Alcotest.bool "net fallback" true
           (Route.lookup t (Addr.host 3 200) = Some (Route.Direct 1));
         check Alcotest.bool "default fallback" true
           (Route.lookup t (Addr.host 9 9)
            = Some (Route.Via (Addr.host 0 1)));
         let t' = Route.remove_host t (Addr.host 3 42) in
         check Alcotest.bool "removed falls to net" true
           (Route.lookup t' (Addr.host 3 42) = Some (Route.Direct 1));
         check Alcotest.bool "original unchanged" true
           (Route.lookup t (Addr.host 3 42)
            = Some (Route.Via (Addr.host 0 42)))) ]

(* --- Node + Topology integration --- *)

let two_hosts () =
  let topo = Topology.create () in
  let lan = Topology.add_lan topo ~net:1 "lan1" in
  let a = Topology.add_host topo "a" lan 1 in
  let b = Topology.add_host topo "b" lan 2 in
  Topology.compute_routes topo;
  (topo, lan, a, b)

let udp_to ~src ~dst_addr data =
  Packet.make ~proto:Ipv4.Proto.udp ~src:(Node.primary_addr src)
    ~dst:dst_addr
    (Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:1 ~dst_port:2 data))

let node_tests =
  [ Alcotest.test_case "same-LAN delivery with ARP resolution" `Quick
      (fun () ->
         let topo, _, a, b = two_hosts () in
         let got = ref 0 in
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> incr got);
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b)
              (Bytes.of_string "hi"));
         Topology.run topo;
         check Alcotest.int "delivered" 1 !got;
         (* ARP cache warmed on both sides *)
         check Alcotest.bool "a knows b" true
           (Node.arp_cache_lookup a (Node.primary_addr b) <> None));
    Alcotest.test_case "multi-hop routed delivery" `Quick (fun () ->
        let topo = Topology.create () in
        let l1 = Topology.add_lan topo ~net:1 "l1" in
        let l2 = Topology.add_lan topo ~net:2 "l2" in
        let l3 = Topology.add_lan topo ~net:3 "l3" in
        let _r1 = Topology.add_router topo "r1" [(l1, 1); (l2, 1)] in
        let _r2 = Topology.add_router topo "r2" [(l2, 2); (l3, 1)] in
        let a = Topology.add_host topo "a" l1 10 in
        let b = Topology.add_host topo "b" l3 10 in
        Topology.compute_routes topo;
        let got_ttl = ref 0 in
        Node.set_proto_handler b Ipv4.Proto.udp (fun _ pkt ->
            got_ttl := pkt.Packet.ttl);
        Node.send a
          (udp_to ~src:a ~dst_addr:(Node.primary_addr b)
             (Bytes.of_string "x"));
        Topology.run topo;
        check Alcotest.int "ttl decremented twice" 62 !got_ttl);
    Alcotest.test_case "ttl expiry generates time exceeded" `Quick
      (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l2 = Topology.add_lan topo ~net:2 "l2" in
         let _r = Topology.add_router topo "r" [(l1, 1); (l2, 1)] in
         let a = Topology.add_host topo "a" l1 10 in
         let b = Topology.add_host topo "b" l2 10 in
         Topology.compute_routes topo;
         let errors = ref [] in
         Node.set_proto_handler a Ipv4.Proto.icmp (fun _ pkt ->
             match Ipv4.Icmp.decode_opt pkt.Packet.payload with
             | Some (Ipv4.Icmp.Time_exceeded _) ->
               errors := pkt.Packet.src :: !errors
             | _ -> ());
         let pkt =
           Packet.make ~ttl:1 ~proto:Ipv4.Proto.udp
             ~src:(Node.primary_addr a) ~dst:(Node.primary_addr b)
             (Ipv4.Udp.encode
                (Ipv4.Udp.make ~src_port:1 ~dst_port:2 Bytes.empty))
         in
         Node.send a pkt;
         Topology.run topo;
         check Alcotest.int "one error" 1 (List.length !errors));
    Alcotest.test_case "no route generates net unreachable" `Quick
      (fun () ->
         let topo, _, a, _ = two_hosts () in
         let got = ref 0 in
         Node.set_proto_handler a Ipv4.Proto.icmp (fun _ _ -> incr got);
         Node.send a (udp_to ~src:a ~dst_addr:(Addr.host 99 1) Bytes.empty);
         Topology.run topo;
         (* locally-originated packet with no route: dropped quietly, the
            sender is the source so no ICMP is self-addressed *)
         check Alcotest.int "dropped" 1 (Node.packets_dropped a));
    Alcotest.test_case "arp failure at router returns host unreachable"
      `Quick (fun () ->
          let topo = Topology.create () in
          let l1 = Topology.add_lan topo ~net:1 "l1" in
          let l2 = Topology.add_lan topo ~net:2 "l2" in
          let _r = Topology.add_router topo "r" [(l1, 1); (l2, 1)] in
          let a = Topology.add_host topo "a" l1 10 in
          Topology.compute_routes topo;
          let unreachable = ref 0 in
          Node.set_proto_handler a Ipv4.Proto.icmp (fun _ pkt ->
              match Ipv4.Icmp.decode_opt pkt.Packet.payload with
              | Some (Ipv4.Icmp.Dest_unreachable { code = 1; _ }) ->
                incr unreachable
              | _ -> ());
          (* host 10.0.2.77 does not exist on l2 *)
          Node.send a (udp_to ~src:a ~dst_addr:(Addr.host 2 77) Bytes.empty);
          Topology.run topo;
          check Alcotest.int "unreachable" 1 !unreachable);
    Alcotest.test_case "gratuitous arp poisons neighbour caches" `Quick
      (fun () ->
         let topo, _, a, b = two_hosts () in
         (* warm a's cache with b's real mac *)
         let got = ref 0 in
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> incr got);
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
         Topology.run topo;
         let real = Node.arp_cache_lookup a (Node.primary_addr b) in
         (* now b claims... rather, a third node c claims b's address *)
         let lan = Topology.lan topo "lan1" in
         let c = Topology.add_host topo "c" lan 3 in
         Node.gratuitous_arp c ~iface:0 (Node.primary_addr b);
         Topology.run topo;
         let poisoned = Node.arp_cache_lookup a (Node.primary_addr b) in
         check Alcotest.bool "changed" true (real <> poisoned));
    Alcotest.test_case "proxy arp answers for foreign address" `Quick
      (fun () ->
         let topo, _, a, b = two_hosts () in
         let ghost = Addr.host 1 99 in
         Node.set_arp_proxy b (fun addr -> Addr.equal addr ghost);
         Node.arp_probe a ~iface:0 ghost;
         Topology.run topo;
         check mac_testable "proxy mac" (Node.iface_mac b 0)
           (match Node.arp_cache_lookup a ghost with
            | Some m -> m
            | None -> Alcotest.fail "no answer"));
    Alcotest.test_case "accept_ip claims foreign packets" `Quick (fun () ->
        let topo, _, a, b = two_hosts () in
        let ghost = Addr.host 1 99 in
        let claimed = ref 0 in
        Node.set_accept_ip b (fun _ pkt ->
            Addr.equal pkt.Packet.dst ghost);
        Node.set_arp_proxy b (fun addr -> Addr.equal addr ghost);
        Node.set_proto_handler b Ipv4.Proto.udp (fun _ pkt ->
            if Addr.equal pkt.Packet.dst ghost then incr claimed);
        Node.send a (udp_to ~src:a ~dst_addr:ghost Bytes.empty);
        Topology.run topo;
        check Alcotest.int "claimed" 1 !claimed);
    Alcotest.test_case "rewrite_forward can replace packets" `Quick
      (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l2 = Topology.add_lan topo ~net:2 "l2" in
         let r = Topology.add_router topo "r" [(l1, 1); (l2, 1)] in
         let a = Topology.add_host topo "a" l1 10 in
         let b = Topology.add_host topo "b" l2 10 in
         let c = Topology.add_host topo "c" l2 11 in
         Topology.compute_routes topo;
         Node.set_rewrite_forward r (fun _ pkt ->
             if Addr.equal pkt.Packet.dst (Node.primary_addr b) then
               Node.Replace { pkt with Packet.dst = Node.primary_addr c }
             else Node.Forward);
         let got_b = ref 0 and got_c = ref 0 in
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> incr got_b);
         Node.set_proto_handler c Ipv4.Proto.udp (fun _ _ -> incr got_c);
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
         Topology.run topo;
         check Alcotest.int "b" 0 !got_b;
         check Alcotest.int "c" 1 !got_c);
    Alcotest.test_case "builtin echo responder" `Quick (fun () ->
        let topo, _, a, b = two_hosts () in
        let replies = ref 0 in
        Node.set_proto_handler a Ipv4.Proto.icmp (fun _ pkt ->
            match Ipv4.Icmp.decode_opt pkt.Packet.payload with
            | Some (Ipv4.Icmp.Echo_reply _) -> incr replies
            | _ -> ());
        let ping =
          Packet.make ~proto:Ipv4.Proto.icmp ~src:(Node.primary_addr a)
            ~dst:(Node.primary_addr b)
            (Ipv4.Icmp.encode
               (Ipv4.Icmp.Echo_request
                  { ident = 1; seq = 1; data = Bytes.empty }))
        in
        Node.send a ping;
        Topology.run topo;
        check Alcotest.int "pong" 1 !replies);
    Alcotest.test_case "lsrr is followed and recorded" `Quick (fun () ->
        let topo = Topology.create () in
        let l1 = Topology.add_lan topo ~net:1 "l1" in
        let l2 = Topology.add_lan topo ~net:2 "l2" in
        let r = Topology.add_router topo "r" [(l1, 1); (l2, 1)] in
        let a = Topology.add_host topo "a" l1 10 in
        let b = Topology.add_host topo "b" l2 10 in
        Topology.compute_routes topo;
        let recorded = ref None in
        Node.set_proto_handler b Ipv4.Proto.udp (fun _ pkt ->
            recorded := Some pkt.Packet.options);
        (* source-route a -> r (waypoint) -> b *)
        let pkt =
          Packet.make ~proto:Ipv4.Proto.udp ~src:(Node.primary_addr a)
            ~dst:(Node.primary_addr r)
            ~options:[Ipv4.Ip_option.lsrr [Node.primary_addr b]]
            (Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:1 ~dst_port:2 Bytes.empty))
        in
        Node.send a pkt;
        Topology.run topo;
        match !recorded with
        | Some [Ipv4.Ip_option.Lsrr { route; _ }] ->
          check addr_testable "recorded waypoint" (Node.primary_addr r)
            route.(0)
        | _ -> Alcotest.fail "expected a recorded LSRR");
    Alcotest.test_case "node down drops traffic; crash_for recovers" `Quick
      (fun () ->
         let topo, _, a, b = two_hosts () in
         let got = ref 0 in
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> incr got);
         Node.set_up b false;
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
         Topology.run topo;
         check Alcotest.int "down: nothing" 0 !got;
         Node.set_up b true;
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
         Topology.run topo;
         check Alcotest.int "up again" 1 !got);
    Alcotest.test_case "arp entries age out and are re-resolved" `Quick
      (fun () ->
         let topo = Topology.create () in
         let lan = Topology.add_lan topo ~net:1 "lan1" in
         let a = Topology.add_host topo "a" lan 1 in
         let b = Topology.add_host topo "b" lan 2 in
         Topology.compute_routes topo;
         let got = ref 0 in
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> incr got);
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
         Topology.run topo;
         check Alcotest.bool "resolved" true
           (Node.arp_cache_lookup a (Node.primary_addr b) <> None);
         (* default TTL is 60 s: advance past it *)
         ignore
           (Netsim.Engine.schedule (Topology.engine topo)
              ~at:(Time.of_sec 61.0) (fun () -> ()));
         Topology.run topo;
         check Alcotest.bool "aged out" true
           (Node.arp_cache_lookup a (Node.primary_addr b) = None);
         (* traffic still flows: a re-ARPs *)
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
         Topology.run topo;
         check Alcotest.int "redelivered" 2 !got);
    Alcotest.test_case "reboot clears arp and fires hooks" `Quick
      (fun () ->
         let topo, _, a, b = two_hosts () in
         let rebooted = ref false in
         Node.on_reboot b (fun _ -> rebooted := true);
         Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> ());
         Node.send a
           (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
         Topology.run topo;
         check Alcotest.bool "cache warm" true (Node.arp_cache_size b > 0);
         Node.reboot b;
         check Alcotest.bool "hook ran" true !rebooted;
         check Alcotest.int "cache cold" 0 (Node.arp_cache_size b));
    Alcotest.test_case "reboot keeps the routing table" `Quick (fun () ->
        let topo = Topology.create () in
        let l1 = Topology.add_lan topo ~net:1 "l1" in
        let l2 = Topology.add_lan topo ~net:2 "l2" in
        let r = Topology.add_router topo "r" [(l1, 1); (l2, 1)] in
        let a = Topology.add_host topo "a" l1 10 in
        let b = Topology.add_host topo "b" l2 10 in
        Topology.compute_routes topo;
        let before = Route.lookup (Node.routes r) (Node.primary_addr b) in
        check Alcotest.bool "route exists" true (before <> None);
        Node.reboot r;
        check Alcotest.bool "route survives the reboot" true
          (Route.lookup (Node.routes r) (Node.primary_addr b) = before);
        (* and it still forwards: a's datagram crosses the rebooted router *)
        let got = ref 0 in
        Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ -> incr got);
        Node.send a (udp_to ~src:a ~dst_addr:(Node.primary_addr b) Bytes.empty);
        Topology.run topo;
        check Alcotest.int "forwarded after reboot" 1 !got) ]

(* --- Routing computation --- *)

let routing_tests =
  [ Alcotest.test_case "hosts get routes to all reachable nets" `Quick
      (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l2 = Topology.add_lan topo ~net:2 "l2" in
         let l3 = Topology.add_lan topo ~net:3 "l3" in
         let _r1 = Topology.add_router topo "r1" [(l1, 1); (l2, 1)] in
         let _r2 = Topology.add_router topo "r2" [(l2, 2); (l3, 1)] in
         let a = Topology.add_host topo "a" l1 10 in
         Topology.compute_routes topo;
         check Alcotest.bool "direct l1" true
           (Route.lookup (Node.routes a) (Addr.host 1 5)
            = Some (Route.Direct 0));
         check Alcotest.bool "l2 via r1" true
           (Route.lookup (Node.routes a) (Addr.host 2 9)
            = Some (Route.Via (Addr.host 1 1)));
         check Alcotest.bool "l3 via r1 too" true
           (Route.lookup (Node.routes a) (Addr.host 3 9)
            = Some (Route.Via (Addr.host 1 1))));
    Alcotest.test_case "unreachable networks get no route" `Quick
      (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l9 = Topology.add_lan topo ~net:9 "l9" in
         let a = Topology.add_host topo "a" l1 10 in
         let _b = Topology.add_host topo "b" l9 10 in
         Topology.compute_routes topo;
         check Alcotest.bool "none" true
           (Route.lookup (Node.routes a) (Addr.host 9 10) = None));
    Alcotest.test_case "hosts are not transit" `Quick (fun () ->
        (* a - l1 - h(two ifaces, not router) - l2 - b : no path *)
        let topo = Topology.create () in
        let l1 = Topology.add_lan topo ~net:1 "l1" in
        let l2 = Topology.add_lan topo ~net:2 "l2" in
        let h = Topology.add_host topo "h" l1 5 in
        ignore (Node.attach h ~addr:(Addr.host 2 5) l2);
        let a = Topology.add_host topo "a" l1 10 in
        Topology.compute_routes topo;
        check Alcotest.bool "no route through host" true
          (Route.lookup (Node.routes a) (Addr.host 2 9) = None));
    Alcotest.test_case "path_length measures LAN traversals" `Quick
      (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l2 = Topology.add_lan topo ~net:2 "l2" in
         let l3 = Topology.add_lan topo ~net:3 "l3" in
         let _r1 = Topology.add_router topo "r1" [(l1, 1); (l2, 1)] in
         let _r2 = Topology.add_router topo "r2" [(l2, 2); (l3, 1)] in
         let a = Topology.add_host topo "a" l1 10 in
         Topology.compute_routes topo;
         check (Alcotest.option Alcotest.int) "to own lan" (Some 1)
           (Net.Routing.path_length ~nodes:(Topology.nodes topo) ~src:a
              ~dst_lan:l1);
         check (Alcotest.option Alcotest.int) "two routers away" (Some 3)
           (Net.Routing.path_length ~nodes:(Topology.nodes topo) ~src:a
              ~dst_lan:l3));
    Alcotest.test_case "move_host rewires attachment" `Quick (fun () ->
        let topo = Topology.create () in
        let l1 = Topology.add_lan topo ~net:1 "l1" in
        let l2 = Topology.add_lan topo ~net:2 "l2" in
        let m = Topology.add_host topo "m" l1 10 in
        Topology.compute_routes topo;
        let home = Node.primary_addr m in
        Node.add_address m home;
        Topology.move_host topo m l2;
        (match Node.ifaces m with
         | [(_, lan, addr)] ->
           check Alcotest.string "on l2" "l2" (Lan.name lan);
           check Alcotest.bool "no foreign addr" true (addr = None)
         | _ -> Alcotest.fail "expected one interface");
        Topology.move_host topo m l1;
        match Node.ifaces m with
        | [(_, lan, addr)] ->
          check Alcotest.string "back home" "l1" (Lan.name lan);
          check (Alcotest.option addr_testable) "home addr restored"
            (Some home) addr
        | _ -> Alcotest.fail "expected one interface");
    Alcotest.test_case "prebuilt graph answers like one-shot queries"
      `Quick (fun () ->
         let topo = Topology.create () in
         let l1 = Topology.add_lan topo ~net:1 "l1" in
         let l2 = Topology.add_lan topo ~net:2 "l2" in
         let l3 = Topology.add_lan topo ~net:3 "l3" in
         let _r1 = Topology.add_router topo "r1" [(l1, 1); (l2, 1)] in
         let _r2 = Topology.add_router topo "r2" [(l2, 2); (l3, 1)] in
         let a = Topology.add_host topo "a" l1 10 in
         let nodes = Topology.nodes topo in
         let g = Net.Routing.graph_of_nodes nodes in
         List.iter
           (fun dst_lan ->
              check (Alcotest.option Alcotest.int) (Lan.name dst_lan)
                (Net.Routing.path_length ~nodes ~src:a ~dst_lan)
                (Net.Routing.path_length_graph g ~src:a ~dst_lan))
           [l1; l2; l3]);
    Alcotest.test_case "compute_graph fills the same tables as compute"
      `Quick (fun () ->
         let build () =
           let topo = Topology.create () in
           let l1 = Topology.add_lan topo ~net:1 "l1" in
           let l2 = Topology.add_lan topo ~net:2 "l2" in
           let l3 = Topology.add_lan topo ~net:3 "l3" in
           let _ = Topology.add_router topo "r1" [(l1, 1); (l2, 1)] in
           let _ = Topology.add_router topo "r2" [(l2, 2); (l3, 1)] in
           let _ = Topology.add_host topo "a" l1 10 in
           topo
         in
         let t1 = build () and t2 = build () in
         Topology.compute_routes t1;  (* Routing.compute *)
         Net.Routing.compute_graph
           (Net.Routing.build ~nodes:(Topology.nodes t2)
              ~lans:(Topology.lans t2));
         List.iter2
           (fun n1 n2 ->
              let e1 = Route.entries (Node.routes n1)
              and e2 = Route.entries (Node.routes n2) in
              check Alcotest.int (Node.name n1 ^ " size")
                (List.length e1) (List.length e2);
              List.iter2
                (fun (a : Route.entry) (b : Route.entry) ->
                   check Alcotest.bool "entry" true
                     (Addr.Prefix.equal a.Route.prefix b.Route.prefix
                      && a.Route.target = b.Route.target))
                e1 e2)
           (Topology.nodes t1) (Topology.nodes t2)) ]

(* --- Topology registration cost --- *)

let topology_tests =
  [ Alcotest.test_case "1000 registrations cost O(1) each" `Quick
      (fun () ->
         (* Regression guard for the list-append registration path: the
            operation counter must grow by exactly one per add (hashtable
            probe + cons), not by a list-length scan.  Counting ops keeps
            the test deterministic where a wall-clock budget would flake
            in CI. *)
         let topo = Topology.create () in
         let bb = Topology.add_lan topo ~net:0xFF00 ~prefix_len:16 "bb" in
         for i = 1 to 1000 do
           ignore (Topology.add_host topo ("h" ^ string_of_int i) bb i)
         done;
         check Alcotest.int "one op per registration" 1001
           (Topology.registration_ops topo);
         check Alcotest.int "all registered" 1000
           (List.length (Topology.nodes topo));
         (* creation-order accessor and name index agree *)
         check Alcotest.string "creation order" "h1"
           (Node.name (List.nth (Topology.nodes topo) 0));
         check Alcotest.string "index lookup" "h500"
           (Node.name (Topology.node topo "h500")));
    Alcotest.test_case "wide backbone prefix addresses 1000 hosts" `Quick
      (fun () ->
         let topo = Topology.create () in
         let bb = Topology.add_lan topo ~net:0xFF00 ~prefix_len:16 "bb" in
         let h = Topology.add_host topo "h" bb 999 in
         check Alcotest.bool "host id above /24 range" true
           (Ipv4.Addr.Prefix.mem (Node.primary_addr h) (Lan.prefix bb));
         check Alcotest.bool "duplicate name rejected" true
           (try
              ignore (Topology.add_host topo "h" bb 1);
              false
            with Invalid_argument _ -> true)) ]

let suite =
  [ ("mac", mac_tests); ("arp-frame", arp_tests); ("lan", lan_tests);
    ("route", route_tests); ("node", node_tests);
    ("routing", routing_tests); ("topology", topology_tests) ]
